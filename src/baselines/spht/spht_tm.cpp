#include "baselines/spht/spht_tm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "alloc/segment.hpp"
#include "htm/htm_tls.hpp"
#include "htm/small_map.hpp"
#include "pmem/crash_sim.hpp"
#include "runtime/per_thread.hpp"

namespace nvhalt {

namespace {
constexpr htm::LocId kGlLoc = htm::make_loc(htm::LocKind::kGlobal, 0x3001);
constexpr std::uint8_t kGlSubscribeAbortCode = 0x61;

inline std::uint64_t pub_pack(std::uint64_t ts, bool persisted) {
  return (ts << 1) | (persisted ? 1 : 0);
}
inline std::uint64_t pub_ts(std::uint64_t v) { return v >> 1; }
inline bool pub_persisted(std::uint64_t v) { return (v & 1) != 0; }

/// One bound for everything per-thread: registry capacity, log array,
/// timestamp publication array, bump states, contexts, stats aggregation.
/// (The seed validated tids against cfg.max_threads but sized and iterated
/// some of these with kMaxThreads — they now all agree by construction.)
int clamped_threads(const SphtConfig& cfg) { return std::clamp(cfg.max_threads, 1, kMaxThreads); }

runtime::PathPolicy make_policy(const SphtConfig& cfg) {
  runtime::PathPolicy p;
  p.htm_attempts = cfg.htm_attempts;
  // SPHT backs off between failed hardware attempts (NV-HALT's fixed
  // attempt burst does not).
  p.backoff_between_hw = true;
  p.adaptive.enabled = cfg.adaptive_htm_budget;
  return p;
}
}  // namespace

/// Stats and RNG live in the shared runtime::TxThreadState base; this adds
/// SPHT's redo scratch.
struct alignas(kCacheLineBytes) SphtTm::ThreadCtx : runtime::TxThreadState {
  std::vector<std::pair<gaddr_t, word_t>> redo;  // write log (HW: in-txn; SW: buffered)
  htm::SmallIndexMap redo_index;                 // gaddr -> redo index (SW read-own-writes)
  std::uint64_t ts_commit = 0;
};

SphtTm::SphtTm(const SphtConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc_iface)
    : runtime::TmRuntime(clamped_threads(cfg), make_policy(cfg)),
      cfg_(cfg),
      pool_(pool),
      htm_(htm),
      alloc_iface_(alloc_iface),
      log_(pool, clamped_threads(cfg), cfg.log_words_per_thread),
      ctx_(clamped_threads(cfg)) {
  cfg_.max_threads = clamped_threads(cfg);
  global_lock_.value.store(0, std::memory_order_relaxed);
  ts_source_.value.store(0, std::memory_order_relaxed);
  gpm_volatile_.value.store(0, std::memory_order_relaxed);
  gpm_durable_.value.store(0, std::memory_order_relaxed);
  gl_held_ns_.value.store(0, std::memory_order_relaxed);
  gpm_raw_idx_ = pool_.alloc_raw(kWordsPerLine);
  // Checkpoint generation word: allocated only when enabled so the default
  // raw layout stays byte-identical.
  if (cfg_.checkpoint) ckpt_gen_raw_idx_ = pool_.alloc_raw(kWordsPerLine);

  ts_pub_ = std::make_unique<CacheLinePadded<std::atomic<std::uint64_t>>[]>(
      static_cast<std::size_t>(cfg_.max_threads));
  for (int t = 0; t < cfg_.max_threads; ++t)
    ts_pub_[t].value.store(pub_pack(0, true), std::memory_order_relaxed);

  bump_ = std::make_unique<BumpState[]>(static_cast<std::size_t>(cfg_.max_threads));
  for (int t = 0; t < ctx_.size(); ++t) {
    ctx_[t].rng.reseed(0x5B47 + static_cast<std::uint64_t>(t));
    // Pre-size the per-thread redo log so steady-state commits never
    // reallocate on the hot path.
    ctx_[t].redo.reserve(128);
  }
  // TM-managed carver: bump chunks are carved as durably-recorded large
  // extents, so recovery can rebuild the watermark from the pool alone.
  // SPHT never frees, so the epoch machinery stays idle (no pins needed)
  // and no per-transaction allocator intents are ever armed.
  alloc_iface_.attach_registry(&registry_);
  // Flight recorder: same conditional-reservation discipline as the
  // checkpoint generation word above.
  if (cfg_.flight_recorder) {
    frec_ = std::make_unique<telemetry::FlightRecorder>(pool_);
    for (int t = 0; t < ctx_.size(); ++t) ctx_[t].recorder = frec_.get();
  }
}

SphtTm::~SphtTm() = default;

void SphtTm::refill_bump_chunk(int tid) {
  BumpState& b = bump_[tid];
  // raw_alloc_large rounds to whole segments; the leftover belongs to us.
  const std::size_t words =
      (cfg_.alloc_chunk_words + kSegmentWords - 1) / kSegmentWords * kSegmentWords;
  b.cur = alloc_iface_.raw_alloc_large(tid, words);
  b.left = words;
}

gaddr_t SphtTm::bump_alloc(int tid, std::size_t nwords) {
  // The artificially cheap SPHT allocator: per-thread chunked bump pointer,
  // no free, no abort handling (aborted transactions leak their blocks).
  BumpState& b = bump_[tid];
  if (b.left < nwords) {
    // Chunk refill is global work; inside a hardware transaction it aborts
    // (the run loop refills outside the transaction and retries).
    if (htm::in_hw_txn()) throw htm::HtmAbort{htm::AbortCause::kExplicit, kAllocAbortCode};
    refill_bump_chunk(tid);
  }
  const gaddr_t a = b.cur;
  b.cur += nwords;
  b.left -= nwords;
  return a;
}

/// Hardware-path handle: uninstrumented reads/writes (no per-address
/// metadata), writes logged into the private redo buffer.
class SphtHwTx final : public Tx {
 public:
  SphtHwTx(SphtTm& tm, SphtTm::ThreadCtx& ctx, int tid) : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, static_cast<int>(tid_), a);
    return tm_.htm_.load(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a));
  }

  void write(gaddr_t a, word_t v) override {
    telemetry::trace2(telemetry::EventKind::kWrite, static_cast<int>(tid_), a);
    if (tm_.cfg_.persist_txns) ctx_.redo.emplace_back(a, v);
    tm_.htm_.store(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a), v);
  }

  gaddr_t alloc(std::size_t nwords) override { return tm_.bump_alloc(tid_, nwords); }
  void free(gaddr_t, std::size_t) override {}  // SPHT's allocator has no free
  bool on_hw_path() const override { return true; }

 private:
  SphtTm& tm_;
  SphtTm::ThreadCtx& ctx_;
  int tid_;
};

/// Software-fallback handle: runs under the global lock, writes buffered
/// so a voluntary abort can roll back.
class SphtSwTx final : public Tx {
 public:
  SphtSwTx(SphtTm& tm, SphtTm::ThreadCtx& ctx, int tid) : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, static_cast<int>(tid_), a);
    const std::uint32_t found = ctx_.redo_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) return ctx_.redo[found].second;
    return tm_.htm_.nontx_load(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a));
  }

  void write(gaddr_t a, word_t v) override {
    telemetry::trace2(telemetry::EventKind::kWrite, static_cast<int>(tid_), a);
    const std::uint32_t found = ctx_.redo_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) {
      ctx_.redo[found].second = v;
      return;
    }
    ctx_.redo_index.insert(a, static_cast<std::uint32_t>(ctx_.redo.size()));
    ctx_.redo.emplace_back(a, v);
  }

  gaddr_t alloc(std::size_t nwords) override { return tm_.bump_alloc(tid_, nwords); }
  void free(gaddr_t, std::size_t) override {}
  bool on_hw_path() const override { return false; }

 private:
  SphtTm& tm_;
  SphtTm::ThreadCtx& ctx_;
  int tid_;
};

void SphtTm::persist_marker_until(int tid, std::uint64_t ts) {
  // Threads block until the durable marker covers their timestamp; whoever
  // holds the mutex persists the current volatile maximum for everyone
  // (the "forward linking" batching effect).
  while (gpm_durable_.value.load(std::memory_order_acquire) < ts) {
    if (auto* c = pool_.crash_coordinator()) c->crash_point();
    std::unique_lock<std::mutex> lk(gpm_mu_, std::try_to_lock);
    if (!lk.owns_lock()) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t m = gpm_volatile_.value.load(std::memory_order_acquire);
    if (gpm_durable_.value.load(std::memory_order_acquire) >= m) continue;
    pool_.raw_store(gpm_raw_idx_, m);
    pool_.flush_raw(tid, gpm_raw_idx_);
    pool_.fence(tid);
    gpm_durable_.value.store(m, std::memory_order_release);
  }
}

void SphtTm::persist_committed(int tid, std::uint64_t ts_commit) {
  ThreadCtx& ctx = ctx_[tid];
  ctx.tel.write_set_size.record(ctx.redo.size());
  [[maybe_unused]] std::uint64_t ack_t0 = 0;
  if constexpr (telemetry::kLevel >= 1) ack_t0 = telemetry::now_ticks();

  // 1. Append + persist the redo log record. The flight-recorder note
  //    rides the append's internal fence. Group-commit hint: a moving
  //    contention clock means other committers are active and their log
  //    appends can share one pool fence.
  const std::uint64_t activity = contention_.activity();
  const FenceGate gate = activity != ctx.last_contention_activity
                             ? FenceGate::kPreferCombine
                             : FenceGate::kAuto;
  ctx.last_contention_activity = activity;
  ctx.fr(tid, telemetry::EventKind::kFence, 0xFF,
         static_cast<std::uint16_t>(std::min<std::size_t>(ctx.redo.size(), 0xFFFF)));
  while (!log_.append(tid, ts_commit, ctx.redo, gate)) replay_full_logs(tid);

  // 2. Publish "my log at ts_commit is durable".
  ts_pub_[tid].value.store(pub_pack(ts_commit, true), std::memory_order_seq_cst);

  // 3. Ordering negotiation: wait until every transaction that may carry a
  //    smaller timestamp has persisted its log. Note that this blocks on
  //    *all* concurrent writers, even with disjoint write sets — the
  //    behaviour NV-HALT's hardware-assisted locking avoids.
  for (int t = 0; t < cfg_.max_threads; ++t) {
    if (t == tid) continue;
    for (;;) {
      const std::uint64_t v = ts_pub_[t].value.load(std::memory_order_seq_cst);
      if (pub_persisted(v) || pub_ts(v) >= ts_commit) break;
      if (auto* c = pool_.crash_coordinator()) c->crash_point();
      std::this_thread::yield();
    }
  }

  // 4. Advance the volatile marker (CAS-max) and wait until the durable
  //    marker covers us: only then is the transaction durably committed.
  std::uint64_t cur = gpm_volatile_.value.load(std::memory_order_acquire);
  while (cur < ts_commit &&
         !gpm_volatile_.value.compare_exchange_weak(cur, ts_commit, std::memory_order_acq_rel)) {
  }
  persist_marker_until(tid, ts_commit);

  // The transaction is durable only now — the whole of persist_committed is
  // SPHT's ordering-negotiation overhead (Sec. 2.1.4), so its latency is
  // the ack latency.
  if constexpr (telemetry::kLevel >= 1) {
    const std::uint64_t waited = telemetry::now_ticks() - ack_t0;
    ctx.tel.ack_latency.record(waited);
    telemetry::trace1(telemetry::EventKind::kDurabilityAck, tid, waited);
  }
}

SphtTm::AttemptResult SphtTm::attempt_hw(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  ctx.redo.clear();
  ctx.ts_commit = 0;

  // Publish an in-flight lower bound on our eventual commit timestamp so
  // concurrent committers know to wait for us (Sec. 2.1.4: the thread
  // "updates its timestamp and marks it as not persistent").
  std::uint64_t ts_begin = 0;
  if (cfg_.persist_txns) {
    ts_begin = ts_source_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
    ts_pub_[tid].value.store(pub_pack(ts_begin, false), std::memory_order_seq_cst);
  }

  htm_.begin(tid);
  SphtHwTx tx(*this, ctx, tid);
  try {
    // Subscribe to the global fallback lock: abort immediately if held,
    // and (via the read set) whenever it becomes held.
    if (htm_.load(tid, kGlLoc, &global_lock_.value) != 0) {
      // Contention cells are plain diagnostics outside the simulated
      // transaction's tracked footprint, so the increment survives xabort.
      contention_.on_abort(0);
      htm_.xabort(tid, kGlSubscribeAbortCode);
    }
    body(tx);
    if (cfg_.persist_txns && !ctx.redo.empty()) {
      // Commit timestamp taken inside the transaction (rdtscp analogue).
      ctx.ts_commit = ts_source_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    htm_.commit(tid);
  } catch (const htm::HtmAbort& a) {
    htm_.cancel(tid);
    if (cfg_.persist_txns)
      ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
    ctx.record_hw_abort(tid, a.cause, a.code);
    // A bump-chunk refill aborted us; do the refill now, outside the
    // transaction, so the retry allocates from thread-local state only.
    if (a.cause == htm::AbortCause::kExplicit && a.code == kAllocAbortCode)
      refill_bump_chunk(tid);
    return AttemptResult::kAborted;
  } catch (const TxUserAbort&) {
    htm_.cancel(tid);
    if (cfg_.persist_txns)
      ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
    ctx.stats.user_aborts++;
    return AttemptResult::kUserAborted;
  } catch (...) {
    htm_.cancel(tid);
    if (cfg_.persist_txns)
      ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
    throw;
  }

  if (cfg_.persist_txns && !ctx.redo.empty()) {
    persist_committed(tid, ctx.ts_commit);
  } else if (cfg_.persist_txns) {
    ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
  }

  ctx.stats.commits++;
  ctx.stats.hw_commits++;
  if (ctx.redo.empty()) ctx.stats.read_only_commits++;
  return AttemptResult::kCommitted;
}

SphtTm::AttemptResult SphtTm::attempt_sw(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  ctx.redo.clear();
  ctx.redo_index.clear();
  ctx.ts_commit = 0;

  // The trivial fallback: claim the global lock, disabling all concurrency
  // (hardware transactions subscribed to it abort on our CAS).
  [[maybe_unused]] std::uint64_t stall_t0 = 0;
  if constexpr (telemetry::kLevel >= 1) stall_t0 = telemetry::now_ticks();
  std::uint64_t expected = 0;
  bool contended = false;
  while (!htm_.nontx_cas(tid, kGlLoc, &global_lock_.value, expected,
                         static_cast<std::uint64_t>(tid) + 1)) {
    contention_.on_cas_fail(0);
    contended = true;
    expected = 0;
    if (auto* c = pool_.crash_coordinator()) c->crash_point();
    std::this_thread::yield();
  }
  if constexpr (telemetry::kLevel >= 1) {
    // kLockStall arg encodes stripe << 48 | ticks; SPHT's only lock is
    // stripe 0, so the arg is the wait alone.
    const std::uint64_t waited = telemetry::now_ticks() - stall_t0;
    if (contended) contention_.on_stall(0, waited);
    telemetry::trace1(telemetry::EventKind::kLockStall, tid,
                      waited & ((std::uint64_t{1} << 48) - 1));
    telemetry::trace1(telemetry::EventKind::kLockAcquire, tid, 1);
    ctx.fr(tid, telemetry::EventKind::kLockAcquire, 0xFF, 1);
  } else {
    if (contended) contention_.on_stall(0, 0);
  }
  const auto gl_acquired_at = std::chrono::steady_clock::now();
  const auto account_gl = [&] {
    gl_held_ns_.value.fetch_add(
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - gl_acquired_at)
                                       .count()),
        std::memory_order_relaxed);
  };

  std::uint64_t ts_begin = 0;
  if (cfg_.persist_txns) {
    ts_begin = ts_source_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
    ts_pub_[tid].value.store(pub_pack(ts_begin, false), std::memory_order_seq_cst);
  }

  SphtSwTx tx(*this, ctx, tid);
  AttemptResult result = AttemptResult::kCommitted;
  try {
    body(tx);
  } catch (const TxUserAbort&) {
    result = AttemptResult::kUserAborted;
    ctx.stats.user_aborts++;
  } catch (...) {
    if (cfg_.persist_txns)
      ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
    account_gl();
    htm_.nontx_store(tid, kGlLoc, &global_lock_.value, 0);
    throw;
  }

  if (result == AttemptResult::kCommitted) {
    // Apply the buffered writes in place; safe under the global lock (any
    // still-publishing hardware commit is waited out by nontx_store).
    for (const auto& [a, v] : ctx.redo)
      htm_.nontx_store(tid, htm::loc_pool(a), pool_.word_ptr(a), v);
    if (cfg_.persist_txns && !ctx.redo.empty()) {
      ctx.ts_commit = ts_source_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
      persist_committed(tid, ctx.ts_commit);
    } else if (cfg_.persist_txns) {
      ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
    }
    ctx.stats.commits++;
    ctx.stats.sw_commits++;
    if (ctx.redo.empty()) ctx.stats.read_only_commits++;
  } else if (cfg_.persist_txns) {
    ts_pub_[tid].value.store(pub_pack(ts_begin, true), std::memory_order_seq_cst);
  }

  account_gl();
  htm_.nontx_store(tid, kGlLoc, &global_lock_.value, 0);
  return result;
}

bool SphtTm::run_registered(int tid, TxMode mode, TxBody body) {
  (void)mode;  // no read-only fast path in the SPHT baseline
  ThreadCtx& ctx = ctx_[tid];

  struct Env {
    SphtTm& tm;
    ThreadCtx& ctx;
    int tid;
    TxBody body;
    runtime::AttemptStatus attempt_hw() { return tm.attempt_hw(tid, body); }
    // The fallback runs under the global lock, so a conflict abort cannot
    // occur; if one ever surfaced, the loop would (correctly) retry rather
    // than report it as a commit — the seed's run() conflated the two.
    runtime::AttemptStatus attempt_sw() { return tm.attempt_sw(tid, body); }
    void before_hw_attempt() {
      // Wait for the fallback lock to be free before (re)trying in hardware.
      [[maybe_unused]] std::uint64_t t0 = 0;
      bool stalled = false;
      if constexpr (telemetry::kLevel >= 1) t0 = telemetry::now_ticks();
      while (tm.htm_.nontx_load(tid, kGlLoc, &tm.global_lock_.value) != 0) {
        stalled = true;
        crash_point();
        std::this_thread::yield();
      }
      if constexpr (telemetry::kLevel >= 1) {
        if (stalled) {
          const std::uint64_t waited = telemetry::now_ticks() - t0;
          tm.contention_.on_stall(0, waited);
          telemetry::trace1(telemetry::EventKind::kLockStall, tid,
                            waited & ((std::uint64_t{1} << 48) - 1));
        }
      } else {
        if (stalled) tm.contention_.on_stall(0, 0);
      }
    }
    void crash_point() {
      if (auto* c = tm.pool_.crash_coordinator()) c->crash_point();
    }
  } env{*this, ctx, tid, body};

  return runtime::run_retry_loop(policy_, tid, ctx, env);
}

TmStats SphtTm::stats() const { return runtime::aggregate_thread_stats(ctx_); }

void SphtTm::reset_stats() {
  runtime::reset_thread_stats(ctx_);
  contention_.reset();
}

telemetry::TmTelemetry SphtTm::telemetry() const {
  return runtime::aggregate_thread_telemetry(ctx_, policy_);
}

}  // namespace nvhalt
