// Per-thread persistent redo logs for the SPHT baseline (paper Sec. 2.1.4).
//
// Each thread owns a region of the raw persistent space. A committed
// transaction appends one record — [timestamp][n][addr val]*n — then
// flushes the record and finally advances the persistent head word, so a
// crash can only ever expose whole records. Logs are bounded; replay
// applies them to the NVM heap image and truncates them.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pmem/pmem_pool.hpp"
#include "util/common.hpp"

namespace nvhalt {

class SphtLog {
 public:
  struct TxnRec {
    std::uint64_t ts;
    std::vector<std::pair<gaddr_t, word_t>> writes;
  };

  /// Reserves `words_per_thread` raw persistent words for each of
  /// `nthreads` threads (dense thread ids 0..nthreads-1).
  SphtLog(PmemPool& pool, int nthreads, std::size_t words_per_thread);

  /// Appends one transaction record and makes it durable (flush + fence).
  /// Returns false if the log lacks space (caller must replay+truncate).
  /// `gate` forwards the caller's group-commit hint to the record fence
  /// (concurrent committers' log appends combine into one pool fence).
  bool append(int tid, std::uint64_t ts,
              std::span<const std::pair<gaddr_t, word_t>> writes,
              FenceGate gate = FenceGate::kAuto);

  /// Collects every whole record with ts <= max_ts from all threads' logs,
  /// reading the staged (crash-free) view.
  void collect(std::uint64_t max_ts, std::vector<TxnRec>& out) const;

  /// Truncates all logs (after a completed replay) and persists the empty
  /// heads.
  void truncate_all(int tid);

  int nthreads() const { return nthreads_; }
  std::size_t used_words(int tid) const { return pool_.raw_load(head_idx(tid)); }
  std::size_t capacity_words() const { return words_; }

 private:
  std::size_t head_idx(int tid) const { return base_[tid]; }
  std::size_t data_idx(int tid) const { return base_[tid] + kWordsPerLine; }

  PmemPool& pool_;
  int nthreads_;
  std::size_t words_;  // data words per thread (excl. head line)
  std::vector<std::size_t> base_;
};

}  // namespace nvhalt
