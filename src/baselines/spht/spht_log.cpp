#include "baselines/spht/spht_log.hpp"

namespace nvhalt {

SphtLog::SphtLog(PmemPool& pool, int nthreads, std::size_t words_per_thread)
    : pool_(pool), nthreads_(nthreads), words_(words_per_thread) {
  base_.resize(static_cast<std::size_t>(nthreads_));
  for (int t = 0; t < nthreads_; ++t) {
    // One line for the head word plus the data region.
    base_[static_cast<std::size_t>(t)] = pool_.alloc_raw(kWordsPerLine + words_);
  }
}

bool SphtLog::append(int tid, std::uint64_t ts,
                     std::span<const std::pair<gaddr_t, word_t>> writes,
                     FenceGate gate) {
  const std::size_t need = 2 + 2 * writes.size();  // [ts][n][addr val]*
  const std::size_t used = pool_.raw_load(head_idx(tid));
  if (used + need > words_) return false;

  const std::size_t rec = data_idx(tid) + used;
  pool_.raw_store(rec + 0, ts);
  pool_.raw_store(rec + 1, writes.size());
  for (std::size_t i = 0; i < writes.size(); ++i) {
    pool_.raw_store(rec + 2 + 2 * i, writes[i].first);
    pool_.raw_store(rec + 3 + 2 * i, writes[i].second);
  }
  // Flush every line the record touches, fence, then durably advance the
  // head — a crash exposes either the old head (record invisible) or the
  // new head (record complete).
  for (std::size_t w = rec; w < rec + need; w += kWordsPerLine) pool_.flush_raw(tid, w);
  pool_.flush_raw(tid, rec + need - 1);
  pool_.fence(tid, gate);
  pool_.raw_store(head_idx(tid), used + need);
  pool_.flush_raw(tid, head_idx(tid));
  pool_.fence(tid);
  return true;
}

void SphtLog::collect(std::uint64_t max_ts, std::vector<TxnRec>& out) const {
  for (int t = 0; t < nthreads_; ++t) {
    const std::size_t used = pool_.raw_load(head_idx(t));
    std::size_t off = 0;
    while (off + 2 <= used) {
      TxnRec rec;
      rec.ts = pool_.raw_load(data_idx(t) + off);
      const std::uint64_t n = pool_.raw_load(data_idx(t) + off + 1);
      if (off + 2 + 2 * n > used) break;  // defensive: malformed tail
      rec.writes.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        rec.writes.emplace_back(pool_.raw_load(data_idx(t) + off + 2 + 2 * i),
                                pool_.raw_load(data_idx(t) + off + 3 + 2 * i));
      }
      off += 2 + 2 * n;
      if (rec.ts <= max_ts) out.push_back(std::move(rec));
    }
  }
}

void SphtLog::truncate_all(int tid) {
  for (int t = 0; t < nthreads_; ++t) {
    pool_.raw_store(head_idx(t), 0);
    pool_.flush_raw(tid, head_idx(t));
  }
  pool_.fence(tid);
}

}  // namespace nvhalt
