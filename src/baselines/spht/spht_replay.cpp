// SPHT log replay and recovery.
//
// The persistent logs are redo logs: the NVM heap image lags and must be
// brought up to date by replaying records in timestamp order (only up to
// the persistent marker). Replay is last-writer-wins per address, applied
// by a configurable number of threads over disjoint address partitions —
// the paper reports this phase scales poorly and uses 16 threads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/spht/spht_tm.hpp"
#include "pmem/crash_sim.hpp"
#include "runtime/recovery_pool.hpp"

namespace nvhalt {

namespace {
/// Must match the global-lock LocId in spht_tm.cpp.
constexpr htm::LocId kGlLoc = htm::make_loc(htm::LocKind::kGlobal, 0x3001);
}  // namespace

namespace {
/// Reduces collected records to the final value per address (records must
/// be applied in timestamp order; sorting makes last-write-wins exact).
std::vector<std::pair<gaddr_t, word_t>> reduce_records(std::vector<SphtLog::TxnRec>& recs) {
  std::sort(recs.begin(), recs.end(),
            [](const SphtLog::TxnRec& a, const SphtLog::TxnRec& b) { return a.ts < b.ts; });
  std::unordered_map<gaddr_t, word_t> last;
  for (const auto& r : recs) {
    for (const auto& [a, v] : r.writes) last[a] = v;
  }
  std::vector<std::pair<gaddr_t, word_t>> out(last.begin(), last.end());
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

void SphtTm::replay(int nthreads) { replay_impl(/*caller_tid=*/0, nthreads, false); }

void SphtTm::replay_impl(int caller_tid, int nthreads, bool durable_prefix_only) {
  std::vector<SphtLog::TxnRec> recs;
  // Checkpoint replays must take EVERY record: truncate_all() below erases
  // the logs wholesale, and a record above the volatile marker belongs to a
  // committed transaction whose owner is still between publishing its log
  // (which is all the full-log quiesce waits for) and advancing the marker.
  // Filtering by the marker here would truncate the only durable copy of a
  // transaction that is about to be acknowledged. Recovery replays are the
  // opposite: the durable marker defines the durably-committed prefix, and
  // records beyond it must not surface.
  const std::uint64_t max_ts = durable_prefix_only
                                   ? gpm_volatile_.value.load(std::memory_order_acquire)
                                   : ~std::uint64_t{0};
  log_.collect(max_ts, recs);
  std::uint64_t applied_ts = 0;
  for (const auto& r : recs) applied_ts = std::max(applied_ts, r.ts);
  const auto final_writes = reduce_records(recs);

  if (!final_writes.empty()) {
    // Threads quiesced by the full-log path can still be flushing the
    // marker line from persist_marker_until with their own pool tid, so
    // replay workers must not share live threads' flush queues: they take
    // dedicated tids from the top of the pool's range. With no spare tids
    // (max_threads == kMaxThreads) replay runs on the caller's thread.
    const int spare = kMaxThreads - cfg_.max_threads;
    const int workers =
        std::min<int>({nthreads, spare, static_cast<int>(final_writes.size())});
    const auto apply_range = [&](int tid, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto [a, v] = final_writes[i];
        // The NVM heap image lives in the records' `cur` field; replay
        // writes it and persists the line. `old`/`pver` are unused by
        // SPHT (they are Trinity machinery) — the pver stamp uses a fixed
        // tid 0 so the replayed image is byte-identical for any worker
        // count (the partitioning decides which worker writes a record).
        PRecord r = pool_.read_record(a);
        pool_.record_write(/*tid=*/0, a, r.old, v, /*seq=*/0);
        pool_.flush_record(tid, a);
      }
      pool_.fence(tid);
    };
    if (workers < 1) {
      apply_range(caller_tid, 0, final_writes.size());
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      const std::size_t per = (final_writes.size() + static_cast<std::size_t>(workers) - 1) /
                              static_cast<std::size_t>(workers);
      std::atomic<bool> power_failed{false};
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          try {
            const std::size_t lo = static_cast<std::size_t>(w) * per;
            const std::size_t hi = std::min(final_writes.size(), lo + per);
            apply_range(kMaxThreads - 1 - w, lo, hi);
          } catch (const SimulatedPowerFailure&) {
            // Replay is idempotent redo: a power failure mid-replay simply
            // means recovery replays again. Surfaced on the calling thread.
            power_failed.store(true, std::memory_order_release);
          }
        });
      }
      for (auto& t : threads) t.join();
      if (power_failed.load(std::memory_order_acquire)) throw SimulatedPowerFailure{};
    }
  }

  if (!durable_prefix_only && applied_ts != 0) {
    // Once the logs are truncated the checkpointed transactions live only
    // in the heap image, so the durable marker must cover them first —
    // recovery trusts the heap for everything at or below the marker and
    // seeds the timestamp source from it, keeping timestamps monotonic
    // across a crash. A power failure between this fence and the
    // truncation replays idempotently (the records are still <= marker).
    std::uint64_t cur = gpm_volatile_.value.load(std::memory_order_acquire);
    while (cur < applied_ts && !gpm_volatile_.value.compare_exchange_weak(
                                   cur, applied_ts, std::memory_order_acq_rel)) {
    }
    std::lock_guard<std::mutex> lk(gpm_mu_);
    const std::uint64_t m = gpm_volatile_.value.load(std::memory_order_acquire);
    if (gpm_durable_.value.load(std::memory_order_acquire) < m) {
      pool_.raw_store(gpm_raw_idx_, m);
      pool_.flush_raw(caller_tid, gpm_raw_idx_);
      pool_.fence(caller_tid);
      gpm_durable_.value.store(m, std::memory_order_release);
    }
  }

  // Logs are durable in the heap image now; truncate them. A crash between
  // the fences above and this truncation replays idempotently.
  log_.truncate_all(caller_tid);
}

void SphtTm::replay_full_logs(int tid) {
  // A thread hit a full log mid-commit. Quiesce writers by taking the
  // global lock (new hardware transactions abort on subscription), wait
  // for in-flight persist phases to finish, then replay and truncate.
  std::uint64_t expected = 0;
  const std::uint64_t me = static_cast<std::uint64_t>(tid) + 1;
  const bool already_held = htm_.nontx_load(tid, kGlLoc, &global_lock_.value) == me;
  if (!already_held) {
    while (!htm_.nontx_cas(tid, kGlLoc, &global_lock_.value, expected, me)) {
      expected = 0;
      std::this_thread::yield();
    }
  }
  const auto gl_acquired_at = std::chrono::steady_clock::now();
  for (int t = 0; t < cfg_.max_threads; ++t) {
    if (t == tid) continue;
    while (!((ts_pub_[t].value.load(std::memory_order_seq_cst) & 1) != 0))
      std::this_thread::yield();
  }
  replay_impl(tid, cfg_.replay_threads, false);
  if (!already_held) {
    gl_held_ns_.value.fetch_add(
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - gl_acquired_at)
                                       .count()),
        std::memory_order_relaxed);
    htm_.nontx_store(tid, kGlLoc, &global_lock_.value, 0);
  }
}

bool SphtTm::checkpoint(int tid) {
  if (!cfg_.checkpoint || !cfg_.persist_txns) return false;
  // SPHT's native compaction IS a full-log replay: every logged write is
  // folded into the NVM heap image, the durable marker advances over the
  // replayed timestamps, and the logs are truncated — after which recovery
  // replays only the delta logged since. The full-log path quiesces
  // writers via the global fallback lock and drains persist phases.
  replay_full_logs(tid);
  // Durably bump the generation counter (observability: tests and the
  // crash sweep assert checkpoints really retired log history).
  pool_.raw_store(tid, ckpt_gen_raw_idx_, pool_.raw_load(ckpt_gen_raw_idx_) + 1);
  pool_.flush_raw(tid, ckpt_gen_raw_idx_);
  if constexpr (telemetry::kLevel >= 1) {
    if (frec_)
      frec_->record(tid, telemetry::EventKind::kCheckpoint, 0xFF,
                    static_cast<std::uint16_t>(pool_.raw_load(ckpt_gen_raw_idx_) & 0xFFFF));
  }
  pool_.fence(tid);
  return true;
}

void SphtTm::recover_data() {
  // Postmortem first: decode the flight recorder from the crash image
  // before any recovery write can disturb it (read-only, never throws).
  if (frec_)
    last_postmortem_ = std::make_unique<telemetry::PostmortemReport>(frec_->postmortem());
  // Post-crash: the staged view equals the durable one. Bring the NVM heap
  // image up to the durable marker, then rebuild the volatile image.
  gpm_volatile_.value.store(pool_.raw_load(gpm_raw_idx_), std::memory_order_relaxed);
  gpm_durable_.value.store(gpm_volatile_.value.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  replay_impl(/*caller_tid=*/0, cfg_.replay_threads, /*durable_prefix_only=*/true);

  // Volatile image rebuild: pure per-word loads/stores, partitioned across
  // the replay workers (byte-identical for any worker count).
  runtime::run_recovery_partitions(
      pool_.capacity_words() - 1, cfg_.replay_threads, /*serial_tid=*/0,
      [&](int /*tid*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const gaddr_t a = static_cast<gaddr_t>(1 + i);
          pool_.store(a, pool_.read_record(a).cur);
        }
      });

  htm_.reset();
  global_lock_.value.store(0, std::memory_order_relaxed);
  // Timestamps must stay monotonic across the crash so new transactions
  // order after every replayed one.
  ts_source_.value.store(gpm_durable_.value.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  for (int t = 0; t < cfg_.max_threads; ++t)
    ts_pub_[t].value.store(1 /*pub_pack(0, true)*/, std::memory_order_relaxed);

  // Rebuild the carver from the pool's persistent metadata (durable
  // segment watermark + large-extent headers). SPHT commits never arm
  // allocator intents — chunks are carved eagerly-durable and nothing is
  // ever freed — so the committed-ness predicate is vacuous.
  alloc_iface_.recover_metadata(0, [](int, std::uint64_t) { return false; });
  for (int t = 0; t < cfg_.max_threads; ++t) bump_[t] = BumpState{};
  // Re-arm the recorder over the recovered image (stamps a recovery event).
  if (frec_) frec_->on_recover(0);
}

void SphtTm::rebuild_allocator(std::span<const LiveBlock> live) {
  if (alloc_iface_.tm_managed()) {
    // recover_data() already rebuilt the carver; the live set is a
    // cross-check only. SPHT bump blocks are sub-chunk carvings inside
    // durably-recorded large extents (not size-class slots), so the check
    // here is containment: every live block must lie below the durable
    // segment watermark. Blocks leaked by aborted transactions stay
    // unreachable — the artificially cheap allocator the paper calls out
    // has no free path to sweep them into.
    const gaddr_t wm_end = alloc_iface_.heap_begin() +
                           static_cast<gaddr_t>(alloc_iface_.durable_watermark()) * kSegmentWords;
    for (const LiveBlock& b : live) {
      if (b.addr < alloc_iface_.heap_begin() || b.addr + b.nwords > wm_end)
        throw TmLogicError("SPHT live block outside the durably carved heap");
    }
    for (int t = 0; t < cfg_.max_threads; ++t) bump_[t] = BumpState{};
    return;
  }
  // Standalone fallback (volatile carver): rebuild with one large in-use
  // block covering everything up to the live high-water mark; fresh chunks
  // continue beyond it.
  const gaddr_t heap_begin = alloc_iface_.heap_begin();
  gaddr_t max_end = heap_begin;
  for (const LiveBlock& b : live) max_end = std::max<gaddr_t>(max_end, b.addr + b.nwords);
  if (max_end > heap_begin) {
    const LiveBlock whole{heap_begin, static_cast<std::uint32_t>(max_end - heap_begin)};
    alloc_iface_.rebuild(std::span<const LiveBlock>(&whole, 1));
  } else {
    alloc_iface_.rebuild({});
  }
  for (int t = 0; t < cfg_.max_threads; ++t) bump_[t] = BumpState{};
}

}  // namespace nvhalt
