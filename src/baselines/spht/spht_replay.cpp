// SPHT log replay and recovery.
//
// The persistent logs are redo logs: the NVM heap image lags and must be
// brought up to date by replaying records in timestamp order (only up to
// the persistent marker). Replay is last-writer-wins per address, applied
// by a configurable number of threads over disjoint address partitions —
// the paper reports this phase scales poorly and uses 16 threads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/spht/spht_tm.hpp"
#include "pmem/crash_sim.hpp"

namespace nvhalt {

namespace {
/// Must match the global-lock LocId in spht_tm.cpp.
constexpr htm::LocId kGlLoc = htm::make_loc(htm::LocKind::kGlobal, 0x3001);
}  // namespace

namespace {
/// Reduces collected records to the final value per address (records must
/// be applied in timestamp order; sorting makes last-write-wins exact).
std::vector<std::pair<gaddr_t, word_t>> reduce_records(std::vector<SphtLog::TxnRec>& recs) {
  std::sort(recs.begin(), recs.end(),
            [](const SphtLog::TxnRec& a, const SphtLog::TxnRec& b) { return a.ts < b.ts; });
  std::unordered_map<gaddr_t, word_t> last;
  for (const auto& r : recs) {
    for (const auto& [a, v] : r.writes) last[a] = v;
  }
  std::vector<std::pair<gaddr_t, word_t>> out(last.begin(), last.end());
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

void SphtTm::replay(int nthreads) {
  std::vector<SphtLog::TxnRec> recs;
  log_.collect(gpm_volatile_.value.load(std::memory_order_acquire), recs);
  const auto final_writes = reduce_records(recs);

  if (!final_writes.empty()) {
    const int workers = std::max(1, std::min<int>(nthreads, static_cast<int>(final_writes.size())));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    const std::size_t per = (final_writes.size() + static_cast<std::size_t>(workers) - 1) /
                            static_cast<std::size_t>(workers);
    std::atomic<bool> power_failed{false};
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          const std::size_t lo = static_cast<std::size_t>(w) * per;
          const std::size_t hi = std::min(final_writes.size(), lo + per);
          for (std::size_t i = lo; i < hi; ++i) {
            const auto [a, v] = final_writes[i];
            // The NVM heap image lives in the records' `cur` field; replay
            // writes it and persists the line. `old`/`pver` are unused by
            // SPHT (they are Trinity machinery).
            PRecord r = pool_.read_record(a);
            pool_.record_write(/*tid=*/w, a, r.old, v, /*seq=*/0);
            pool_.flush_record(/*tid=*/w, a);
          }
          pool_.fence(w);
        } catch (const SimulatedPowerFailure&) {
          // Replay is idempotent redo: a power failure mid-replay simply
          // means recovery replays again. Surfaced on the calling thread.
          power_failed.store(true, std::memory_order_release);
        }
      });
    }
    for (auto& t : threads) t.join();
    if (power_failed.load(std::memory_order_acquire)) throw SimulatedPowerFailure{};
  }

  // Logs are durable in the heap image now; truncate them. A crash between
  // the fences above and this truncation replays idempotently.
  log_.truncate_all(/*tid=*/0);
}

void SphtTm::replay_full_logs(int tid) {
  // A thread hit a full log mid-commit. Quiesce writers by taking the
  // global lock (new hardware transactions abort on subscription), wait
  // for in-flight persist phases to finish, then replay and truncate.
  std::uint64_t expected = 0;
  const std::uint64_t me = static_cast<std::uint64_t>(tid) + 1;
  const bool already_held = htm_.nontx_load(tid, kGlLoc, &global_lock_.value) == me;
  if (!already_held) {
    while (!htm_.nontx_cas(tid, kGlLoc, &global_lock_.value, expected, me)) {
      expected = 0;
      std::this_thread::yield();
    }
  }
  const auto gl_acquired_at = std::chrono::steady_clock::now();
  for (int t = 0; t < cfg_.max_threads; ++t) {
    if (t == tid) continue;
    while (!((ts_pub_[t].value.load(std::memory_order_seq_cst) & 1) != 0))
      std::this_thread::yield();
  }
  replay(cfg_.replay_threads);
  if (!already_held) {
    gl_held_ns_.value.fetch_add(
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - gl_acquired_at)
                                       .count()),
        std::memory_order_relaxed);
    htm_.nontx_store(tid, kGlLoc, &global_lock_.value, 0);
  }
}

void SphtTm::recover_data() {
  // Post-crash: the staged view equals the durable one. Bring the NVM heap
  // image up to the durable marker, then rebuild the volatile image.
  gpm_volatile_.value.store(pool_.raw_load(gpm_raw_idx_), std::memory_order_relaxed);
  gpm_durable_.value.store(gpm_volatile_.value.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  replay(1);

  for (gaddr_t a = 1; a < pool_.capacity_words(); ++a)
    pool_.store(a, pool_.read_record(a).cur);

  htm_.reset();
  global_lock_.value.store(0, std::memory_order_relaxed);
  // Timestamps must stay monotonic across the crash so new transactions
  // order after every replayed one.
  ts_source_.value.store(gpm_durable_.value.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  for (int t = 0; t < cfg_.max_threads; ++t)
    ts_pub_[t].value.store(1 /*pub_pack(0, true)*/, std::memory_order_relaxed);
}

void SphtTm::rebuild_allocator(std::span<const LiveBlock> live) {
  // SPHT's bump blocks are not size-class aligned, so the shared carver is
  // rebuilt with one large in-use block covering everything up to the live
  // high-water mark; fresh chunks continue beyond it. (SPHT never recycles
  // memory — the artificially cheap allocator the paper calls out.)
  const gaddr_t heap_begin = alloc_iface_.heap_begin();
  gaddr_t max_end = heap_begin;
  for (const LiveBlock& b : live) max_end = std::max<gaddr_t>(max_end, b.addr + b.nwords);
  if (max_end > heap_begin) {
    const LiveBlock whole{heap_begin, static_cast<std::uint32_t>(max_end - heap_begin)};
    alloc_iface_.rebuild(std::span<const LiveBlock>(&whole, 1));
  } else {
    alloc_iface_.rebuild({});
  }
  for (int t = 0; t < cfg_.max_threads; ++t) bump_[t] = BumpState{};
}

}  // namespace nvhalt
