// Trinity baseline (paper Sec. 2.1.2): the state-of-the-art persistent STM
// the paper compares against — TL2 concurrency control combined with
// Trinity's colocated undo-record persistence ("TrinityVR-TL2").
//
// TL2 (Dice/Shalev/Shavit): a global version clock; each transaction reads
// it at start (rv). Reads are valid when the protecting versioned lock is
// unlocked with version <= rv, sandwiching the value read. Writes are
// buffered; at commit the write-set locks are acquired in a fixed order
// (which is what gives TL2 strong progressiveness), the clock is advanced
// (wv), the read set is validated unless wv == rv + 1, the writes are
// performed, and the locks are released with version wv.
//
// Persistence: identical Trinity record mechanism as NV-HALT's software
// path — per-word {cur, old, pver} records flushed while the write-set
// locks are held, then the thread's persistent version number is advanced
// and persisted. (The original Trinity uses a global sequence number
// coupled with its flat-combining/TL2 integration; the per-thread version
// scheme is the generalization the paper itself adopts for NV-HALT and is
// what makes concurrent disjoint writers durably recoverable. Documented
// in DESIGN.md.)
//
// Trinity is a pure STM: no hardware path, so its memory accesses use
// plain atomics rather than the HTM simulator.
#pragma once

#include <atomic>
#include <memory>

#include "api/tm.hpp"
#include "locks/lock_table.hpp"
#include "runtime/tm_runtime.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/common.hpp"

namespace nvhalt {

class CheckpointManager;

struct TrinityConfig {
  std::size_t lock_table_entries = std::size_t{1} << 16;
  /// Bound on retries; < 0 retries until commit.
  int max_retries = -1;

  /// Checkpoint/compaction (DESIGN.md Sec. 13): same dirty-line bitmap +
  /// generation watermark as NV-HALT (the persistence mechanism is
  /// identical). Off by default; the raw region is allocated only when
  /// enabled so the pool layout stays byte-identical otherwise.
  bool checkpoint = false;

  /// Recovery worker pool size; any count recovers a byte-identical image.
  int recovery_threads = 1;

  /// Persistent flight recorder (telemetry/flight_recorder.hpp). Same
  /// conditional-reservation discipline as `checkpoint`: the recorder raw
  /// region exists only when enabled, records are written only at
  /// NVHALT_TELEMETRY >= 1.
  bool flight_recorder = false;
};

class TrinityTm final : public runtime::TmRuntime {
 public:
  TrinityTm(const TrinityConfig& cfg, PmemPool& pool, TxAllocator& alloc);
  ~TrinityTm() override;

  void recover_data() override;
  void rebuild_allocator(std::span<const LiveBlock> live) override;
  bool checkpoint(int tid) override;

  /// Checkpoint subsystem, or null when cfg.checkpoint is off (tests).
  CheckpointManager* checkpoint_manager() { return ckpt_.get(); }

  PmemPool& pool() override { return pool_; }
  TxAllocator& allocator() override { return alloc_; }
  const char* name() const override { return "Trinity"; }
  TmStats stats() const override;
  void reset_stats() override;
  telemetry::TmTelemetry telemetry() const override;
  const ContentionTable* contention() const override { return &locks_.contention(); }
  const telemetry::PostmortemReport* last_postmortem() const override {
    return last_postmortem_.get();
  }

  /// Flight recorder, or null when cfg.flight_recorder is off.
  telemetry::FlightRecorder* flight_recorder() { return frec_.get(); }

  std::uint64_t gv() const { return gv_.value.load(std::memory_order_acquire); }

 protected:
  /// Software-only instantiation of the unified retry loop (htm_attempts
  /// is pinned to 0: Trinity has no hardware path).
  bool run_registered(int tid, TxMode mode, TxBody body) override;

 private:
  friend class TrinityTx;
  struct ThreadCtx;

  using AttemptResult = runtime::AttemptStatus;
  AttemptResult attempt(int tid, TxBody body);

  TrinityConfig cfg_;
  PmemPool& pool_;
  TxAllocator& alloc_;
  LockSpace locks_;
  std::unique_ptr<CheckpointManager> ckpt_;  // only when cfg_.checkpoint
  std::unique_ptr<telemetry::FlightRecorder> frec_;  // only when cfg_.flight_recorder
  std::unique_ptr<telemetry::PostmortemReport> last_postmortem_;
  CacheLinePadded<std::atomic<std::uint64_t>> gv_;  // TL2 global version clock
  runtime::PerThread<ThreadCtx> ctx_;
};

}  // namespace nvhalt
