#include "baselines/trinity/trinity_tm.hpp"

#include <algorithm>
#include <shared_mutex>
#include <vector>

#include "core/record_recovery.hpp"
#include "htm/small_map.hpp"
#include "pmem/checkpoint.hpp"
#include "pmem/crash_sim.hpp"
#include "runtime/per_thread.hpp"

namespace nvhalt {

namespace {

runtime::PathPolicy make_policy(const TrinityConfig& cfg) {
  runtime::PathPolicy p;
  p.htm_attempts = 0;  // pure STM: no hardware path
  p.max_sw_retries = cfg.max_retries;
  return p;
}

}  // namespace

/// Stats, RNG and the pver cache live in the shared runtime::TxThreadState
/// base; this adds Trinity's TL2 scratch.
struct alignas(kCacheLineBytes) TrinityTm::ThreadCtx : runtime::TxThreadState {
  struct ReadEnt {
    std::atomic<std::uint64_t>* lock_s;
    std::uint64_t seen;  // sandwich snapshot (unlocked, version <= rv)
  };
  struct WriteEnt {
    gaddr_t addr;
    word_t val;
    std::atomic<std::uint64_t>* lock_s;
  };
  std::vector<ReadEnt> rdset;
  std::vector<WriteEnt> wrset;
  htm::SmallIndexMap wr_index;                    // gaddr -> wrset index
  htm::SmallIndexMap lock_dedupe;                 // lock ptr -> first wrset index
  std::vector<std::atomic<std::uint64_t>*> held;  // locks acquired this commit
  std::uint64_t rv = 0;
};

TrinityTm::TrinityTm(const TrinityConfig& cfg, PmemPool& pool, TxAllocator& alloc)
    : runtime::TmRuntime(kMaxThreads, make_policy(cfg)),
      cfg_(cfg),
      pool_(pool),
      alloc_(alloc),
      locks_(LockMode::kTable, cfg.lock_table_entries, pool.capacity_words()),
      ctx_(kMaxThreads) {
  gv_.value.store(0, std::memory_order_relaxed);
  for (int t = 0; t < ctx_.size(); ++t) {
    ctx_[t].rng.reseed(0x7121717 + static_cast<std::uint64_t>(t));
    // Pre-size per-transaction scratch so the steady state never
    // reallocates on the hot path.
    ctx_[t].rdset.reserve(256);
    ctx_[t].wrset.reserve(64);
    ctx_[t].held.reserve(64);
  }
  // TM-managed allocator: persistent metadata, epoch-based reclamation
  // bounded by this registry, and crash recovery from the pool alone.
  alloc_.attach_registry(&registry_);
  // Checkpoint/compaction: reserves its raw region only when enabled.
  if (cfg_.checkpoint) ckpt_ = std::make_unique<CheckpointManager>(pool_, &alloc_);
  // Flight recorder: same conditional-reservation discipline, allocated
  // after the checkpoint region for stable raw offsets.
  if (cfg_.flight_recorder) {
    frec_ = std::make_unique<telemetry::FlightRecorder>(pool_);
    for (int t = 0; t < ctx_.size(); ++t) ctx_[t].recorder = frec_.get();
  }
}

TrinityTm::~TrinityTm() = default;

bool TrinityTm::checkpoint(int tid) {
  if (!ckpt_) return false;
  ckpt_->checkpoint(tid);
  if (frec_) {
    ctx_[tid].fr(tid, telemetry::EventKind::kCheckpoint, 0xFF,
                 static_cast<std::uint16_t>(ckpt_->generation() & 0xFFFF));
    pool_.fence(tid);
  }
  return true;
}

/// Tx handle for one TL2 attempt.
class TrinityTx final : public Tx {
 public:
  TrinityTx(TrinityTm& tm, TrinityTm::ThreadCtx& ctx, int tid)
      : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, tid_, a);
    const std::uint32_t found = ctx_.wr_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) return ctx_.wrset[found].val;

    LockRef lk = tm_.locks_.ref(a);
    // TL2 read: value sandwiched by identical lock snapshots that are
    // unlocked with version <= rv — i.e. written before we started.
    const std::uint64_t l1 = lk.s->load(std::memory_order_seq_cst);
    if (lockword::is_locked(l1) || lockword::version(l1) > ctx_.rv) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }
    const word_t val = tm_.pool_.word_ptr(a)->load(std::memory_order_seq_cst);
    const std::uint64_t l2 = lk.s->load(std::memory_order_seq_cst);
    if (l1 != l2) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }
    ctx_.rdset.push_back({lk.s, l1});
    return val;
  }

  void write(gaddr_t a, word_t v) override {
    telemetry::trace2(telemetry::EventKind::kWrite, tid_, a);
    const std::uint32_t found = ctx_.wr_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) {
      ctx_.wrset[found].val = v;
      return;
    }
    LockRef lk = tm_.locks_.ref(a);
    if (lockword::is_locked(lk.s->load(std::memory_order_seq_cst))) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }
    ctx_.wr_index.insert(a, static_cast<std::uint32_t>(ctx_.wrset.size()));
    ctx_.wrset.push_back({a, v, lk.s});
  }

  gaddr_t alloc(std::size_t nwords) override { return tm_.alloc_.tx_alloc(tid_, nwords); }
  void free(gaddr_t a, std::size_t nwords) override { tm_.alloc_.tx_free(tid_, a, nwords); }
  bool on_hw_path() const override { return false; }

  void commit() {
    if (ctx_.wrset.empty()) {
      if (tm_.alloc_.has_pending(tid_)) {
        // No data words written, but the transaction allocated or freed:
        // the allocator effects still need the arm → marker → apply
        // durability sequence (no locks needed — reads were validated at
        // read time, and the effects are per-thread allocator state). This
        // is still a persist phase: hold the checkpoint guard so a
        // concurrent checkpoint's intent quiesce cannot race the arm. No
        // record stores happen, so there are no dirty lines to mark.
        std::shared_lock<std::shared_mutex> persist_phase;
        if (tm_.ckpt_) persist_phase = tm_.ckpt_->persist_phase();
        tm_.alloc_.persist_arm(tid_, ctx_.pver);
        ctx_.fr(tid_, telemetry::EventKind::kAllocArm);
        ctx_.fr(tid_, telemetry::EventKind::kFence, 0xFF, 0);
        tm_.pool_.fence(tid_);
        ++ctx_.pver;
        tm_.pool_.store_pver(tid_, ctx_.pver);
        tm_.pool_.flush_pver(tid_);
        tm_.alloc_.persist_apply(tid_);
        ctx_.fr(tid_, telemetry::EventKind::kAllocApply);
        tm_.pool_.fence(tid_);
        return;
      }
      ctx_.stats.read_only_commits++;
      return;  // per-read validation suffices for read-only transactions
    }

    // Fixed-order lock acquisition => strong progressiveness (Sec. 2.1.1).
    std::sort(ctx_.wrset.begin(), ctx_.wrset.end(),
              [](const auto& x, const auto& y) { return x.addr < y.addr; });

    ctx_.lock_dedupe.clear();
    ctx_.held.clear();
    for (std::uint32_t i = 0; i < ctx_.wrset.size(); ++i) {
      auto& w = ctx_.wrset[i];
      const std::uint64_t key = reinterpret_cast<std::uintptr_t>(w.lock_s);
      if (ctx_.lock_dedupe.find(key) != htm::SmallIndexMap::kNotFound) continue;
      std::uint64_t cur = w.lock_s->load(std::memory_order_seq_cst);
      // Commit-time (encounter-free) acquisition: lock must be free with a
      // version not beyond rv (otherwise our buffered value may be stale).
      if (lockword::is_locked(cur) || lockword::version(cur) > ctx_.rv ||
          !w.lock_s->compare_exchange_strong(cur, lockword::make(lockword::version(cur), true, tid_),
                                             std::memory_order_seq_cst)) {
        tm_.locks_.contention().on_cas_fail(tm_.locks_.contention_stripe(w.addr));
        release_held_at_rollback();  // restore pre-acquire versions
        throw TxConflictAbort{};
      }
      ctx_.lock_dedupe.insert(key, i);
      ctx_.held.push_back(w.lock_s);
    }

    const std::uint64_t wv = gv_fetch_add();
    if (wv != ctx_.rv + 1) {
      // Clock moved: revalidate the read set under the held locks.
      for (const auto& e : ctx_.rdset) {
        const std::uint64_t cur = e.lock_s->load(std::memory_order_seq_cst);
        const bool self_held = lockword::is_locked(cur) && lockword::owner(cur) == tid_;
        if (!self_held &&
            (lockword::is_locked(cur) || lockword::version(cur) > ctx_.rv)) {
          tm_.locks_.contention().on_abort(
              tm_.locks_.contention_stripe_of_lock(e.lock_s));
          release_held_at_rollback();
          throw TxConflictAbort{};
        }
        if (self_held && lockword::version(cur) > ctx_.rv) {
          tm_.locks_.contention().on_abort(
              tm_.locks_.contention_stripe_of_lock(e.lock_s));
          release_held_at_rollback();
          throw TxConflictAbort{};
        }
      }
    }

    // Persist with Trinity records while the locks are held, then apply.
    ctx_.tel.write_set_size.record(ctx_.wrset.size());
    // Group-commit hint (same rule as NV-HALT): a moving contention clock
    // means other writers are active, so the commit fences should linger
    // to combine; quiet clock keeps solo latency.
    const std::uint64_t activity = tm_.locks_.contention().activity();
    const FenceGate gate = activity != ctx_.last_contention_activity
                               ? FenceGate::kPreferCombine
                               : FenceGate::kAuto;
    ctx_.last_contention_activity = activity;
    telemetry::trace1(telemetry::EventKind::kLockAcquire, tid_, ctx_.held.size());
    ctx_.fr(tid_, telemetry::EventKind::kLockAcquire, 0xFF,
            static_cast<std::uint16_t>(
                std::min<std::size_t>(ctx_.held.size(), 0xFFFF)));
    // Checkpointing: durably publish the write set's dirty-line bits
    // before any record store is staged (write-barrier invariant), under
    // the persist-phase guard checkpoints drain.
    std::shared_lock<std::shared_mutex> persist_phase;
    if (tm_.ckpt_) {
      persist_phase = tm_.ckpt_->persist_phase();
      bool need_fence = false;
      for (const auto& w : ctx_.wrset) need_fence |= tm_.ckpt_->mark(tid_, w.addr);
      if (need_fence) {
        tm_.pool_.fence(tid_);
        tm_.ckpt_->commit_marks(tid_);
      }
    }
    // Allocator intent record: armed under this transaction's pre-bump
    // pVerNum and flushed with the write set, so it is durable before the
    // marker can be. Recovery replays it iff pver crossed the arm id.
    tm_.alloc_.persist_arm(tid_, ctx_.pver);
    for (const auto& w : ctx_.wrset) {
      const word_t old = tm_.pool_.load(w.addr);
      tm_.pool_.record_write(tid_, w.addr, old, w.val, ctx_.pver);
      tm_.pool_.flush_record(tid_, w.addr);
      tm_.pool_.word_ptr(w.addr)->store(w.val, std::memory_order_seq_cst);
    }
    // Flight-recorder notes ride the write-set fence below.
    if (tm_.alloc_.has_pending(tid_))
      ctx_.fr(tid_, telemetry::EventKind::kAllocArm);
    ctx_.fr(tid_, telemetry::EventKind::kFence, 0xFF,
            static_cast<std::uint16_t>(
                std::min<std::size_t>(ctx_.wrset.size(), 0xFFFF)));
    tm_.pool_.fence(tid_, gate);
    ++ctx_.pver;
    tm_.pool_.store_pver(tid_, ctx_.pver);
    tm_.pool_.flush_pver(tid_);
    // Allocation-bitmap apply rides the marker's fence: apply-durable
    // implies marker-durable (enqueue order), and recovery re-normalizes
    // the still-armed record idempotently either way.
    const bool applied = tm_.alloc_.has_pending(tid_);
    tm_.alloc_.persist_apply(tid_);
    if (applied) ctx_.fr(tid_, telemetry::EventKind::kAllocApply);
    tm_.pool_.fence(tid_, gate);

    // Release with version wv: readers that started before us see
    // version > rv and abort/revalidate.
    for (auto* lock : ctx_.held)
      lock->store(lockword::make(wv, false, 0), std::memory_order_seq_cst);
    ctx_.held.clear();
  }

 private:
  std::uint64_t gv_fetch_add() {
    return tm_.gv_.value.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Releases locks acquired so far, restoring their pre-acquire version
  /// (acquisition kept the version and set the lock bit, so clearing the
  /// bit restores the exact prior word).
  void release_held_at_rollback() {
    for (auto* lock : ctx_.held) {
      const std::uint64_t cur = lock->load(std::memory_order_seq_cst);
      lock->store(lockword::make(lockword::version(cur), false, 0), std::memory_order_seq_cst);
    }
    ctx_.held.clear();
  }

  TrinityTm& tm_;
  TrinityTm::ThreadCtx& ctx_;
  int tid_;
};

TrinityTm::AttemptResult TrinityTm::attempt(int tid, TxBody body) {
  // Reclamation epoch: the quiescent refresh keeps this thread's
  // persistent reservation current, so no node this transaction may read
  // can be recycled under it (alloc/ebr.hpp).
  alloc::quiesce_attempt(alloc_.epochs(), tid);
  ThreadCtx& ctx = ctx_[tid];
  ctx.rdset.clear();
  ctx.wrset.clear();
  ctx.wr_index.clear();
  ctx.rv = gv_.value.load(std::memory_order_seq_cst);

  TrinityTx tx(*this, ctx, tid);
  try {
    body(tx);
    tx.commit();
  } catch (const TxConflictAbort&) {
    alloc_.on_abort(tid);
    ctx.stats.sw_aborts++;
    return AttemptResult::kAborted;
  } catch (const TxUserAbort&) {
    alloc_.on_abort(tid);
    ctx.stats.user_aborts++;
    return AttemptResult::kUserAborted;
  } catch (...) {
    alloc_.on_abort(tid);
    throw;
  }
  alloc_.on_commit(tid);
  ctx.stats.commits++;
  ctx.stats.sw_commits++;
  return AttemptResult::kCommitted;
}

bool TrinityTm::run_registered(int tid, TxMode mode, TxBody body) {
  (void)mode;  // no read-only fast path: Trinity reads are already plain loads
  ThreadCtx& ctx = ctx_[tid];
  ensure_pver(pool_, tid, ctx);

  struct Env {
    TrinityTm& tm;
    int tid;
    TxBody body;
    runtime::AttemptStatus attempt_hw() { return runtime::AttemptStatus::kAborted; }
    runtime::AttemptStatus attempt_sw() { return tm.attempt(tid, body); }
    void before_hw_attempt() {}
    void crash_point() {
      if (auto* c = tm.pool_.crash_coordinator()) c->crash_point();
    }
  } env{*this, tid, body};

  return runtime::run_retry_loop(policy_, tid, ctx, env);
}

void TrinityTm::recover_data() {
  const int rtid = 0;  // serial tid; workers take the dedicated top range
  // Postmortem first: decode the flight recorder from the crash image
  // before any recovery write can disturb it (read-only, never throws).
  if (frec_)
    last_postmortem_ = std::make_unique<telemetry::PostmortemReport>(frec_->postmortem());
  std::uint64_t durable_pver[kMaxThreads];
  for (int t = 0; t < kMaxThreads; ++t) durable_pver[t] = pool_.load_pver(t);

  // Shared record-revert engine (core/record_recovery.cpp): bounded by the
  // checkpoint's dirty-line bitmap when enabled, partitioned across
  // cfg_.recovery_threads workers either way.
  RecordRecoveryOptions ropt;
  ropt.rtid = rtid;
  ropt.workers = cfg_.recovery_threads;
  ropt.ckpt = ckpt_.get();
  recover_records(pool_, durable_pver, ropt);

  locks_.reset();
  gv_.value.store(0, std::memory_order_relaxed);
  ctx_.for_each([](ThreadCtx& c) { c.pver_loaded = false; });

  // Reconstruct allocator state from the pool's persistent metadata: the
  // committed-ness predicate mirrors the data pass (record stamped with a
  // pre-bump pVerNum is committed iff the durable marker crossed it).
  alloc_.recover_metadata(
      rtid, [&](int t, std::uint64_t seq) { return seq < durable_pver[t]; },
      cfg_.recovery_threads);

  // Start a fresh checkpoint generation over the recovered image.
  if (ckpt_) ckpt_->recover(rtid);
  // Re-arm the recorder over the recovered image (stamps a recovery event).
  if (frec_) frec_->on_recover(rtid);
}

void TrinityTm::rebuild_allocator(std::span<const LiveBlock> live) {
  if (alloc_.tm_managed()) {
    alloc_.verify_rebuild(live);
    return;
  }
  alloc_.rebuild(live);
}

TmStats TrinityTm::stats() const { return runtime::aggregate_thread_stats(ctx_); }

void TrinityTm::reset_stats() {
  runtime::reset_thread_stats(ctx_);
  locks_.contention().reset();
}

telemetry::TmTelemetry TrinityTm::telemetry() const {
  return runtime::aggregate_thread_telemetry(ctx_, policy_);
}

}  // namespace nvhalt
