#include "htm/conflict_table.hpp"

#include <new>

namespace nvhalt::htm {

ConflictTable::ConflictTable(std::size_t stripe_count) : count_(stripe_count) {
  if (count_ == 0 || (count_ & (count_ - 1)) != 0)
    throw TmLogicError("stripe count must be a power of two");
  stripes_ = new Stripe[count_];
}

ConflictTable::~ConflictTable() { delete[] stripes_; }

void ConflictTable::reset() {
  for (std::size_t i = 0; i < count_; ++i) {
    stripes_[i].writer.store(0, std::memory_order_relaxed);
    for (auto& m : stripes_[i].readers) m.store(0, std::memory_order_relaxed);
  }
}

}  // namespace nvhalt::htm
