// Small open-addressing hash containers used for per-transaction tracking
// sets. Cleared in O(1) between transactions via generation stamping.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.hpp"

namespace nvhalt::htm {

/// Open-addressing map from a 64-bit key to a 32-bit payload index.
/// Generation-stamped: clear() is O(1). Grows by rehashing.
class SmallIndexMap {
 public:
  explicit SmallIndexMap(std::size_t initial_pow2 = 64) { init(initial_pow2); }

  void clear() {
    // On 32-bit wraparound a surviving slot stamped with the old value of
    // the wrapped generation would alias live and resurrect a dead key, so
    // pay one O(capacity) sweep per 2^32 clears to restamp everything dead.
    if (NVHALT_UNLIKELY(++gen_ == 0)) {
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
    size_ = 0;
  }

  /// Test hook: force the generation counter near wraparound.
  void set_generation_for_test(std::uint32_t gen) { gen_ = gen; }

  std::size_t size() const { return size_; }

  /// Returns the payload for `key`, or kNotFound.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;
  std::uint32_t find(std::uint64_t key) const {
    std::size_t i = hash(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return kNotFound;
      if (s.key == key) return s.payload;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts key -> payload. If key exists, overwrites. Returns true when
  /// the key was newly inserted.
  bool insert(std::uint64_t key, std::uint32_t payload) {
    if ((size_ + 1) * 10 >= capacity() * 7) grow();
    std::size_t i = hash(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s.gen = gen_;
        s.key = key;
        s.payload = payload;
        ++size_;
        return true;
      }
      if (s.key == key) {
        s.payload = payload;
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t payload = 0;
    std::uint32_t gen = 0;
  };

  std::size_t capacity() const { return mask_ + 1; }

  std::size_t hash(std::uint64_t key) const {
    std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
    return (x >> 32) & mask_;
  }

  void init(std::size_t pow2) {
    slots_.assign(pow2, Slot{});
    mask_ = pow2 - 1;
    gen_ = 1;
    size_ = 0;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_gen = gen_;
    init(old.size() * 2);
    for (const Slot& s : old) {
      if (s.gen == old_gen) insert(s.key, s.payload);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t gen_ = 1;
  std::size_t size_ = 0;
};

/// Open-addressing set of 64-bit keys, generation-stamped.
class SmallSet {
 public:
  explicit SmallSet(std::size_t initial_pow2 = 128) { init(initial_pow2); }

  void clear() {
    // Same wraparound hazard as SmallIndexMap::clear.
    if (NVHALT_UNLIKELY(++gen_ == 0)) {
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
    size_ = 0;
  }

  /// Test hook: force the generation counter near wraparound.
  void set_generation_for_test(std::uint32_t gen) { gen_ = gen; }

  std::size_t size() const { return size_; }

  /// Returns true if `key` was newly added.
  bool insert(std::uint64_t key) {
    if ((size_ + 1) * 10 >= (mask_ + 1) * 7) grow();
    std::size_t i = hash(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s.gen = gen_;
        s.key = key;
        ++size_;
        return true;
      }
      if (s.key == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const {
    std::size_t i = hash(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return false;
      if (s.key == key) return true;
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t gen = 0;
  };

  std::size_t hash(std::uint64_t key) const {
    std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
    return (x >> 32) & mask_;
  }

  void init(std::size_t pow2) {
    slots_.assign(pow2, Slot{});
    mask_ = pow2 - 1;
    gen_ = 1;
    size_ = 0;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_gen = gen_;
    init(old.size() * 2);
    for (const Slot& s : old) {
      if (s.gen == old_gen) insert(s.key);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t gen_ = 1;
  std::size_t size_ = 0;
};

}  // namespace nvhalt::htm
