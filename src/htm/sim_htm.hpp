// Software-simulated best-effort hardware transactional memory with Intel
// RTM semantics. TSX is fused off on modern CPUs (and absent here), so the
// paper's fast path runs on this simulator instead; see DESIGN.md for the
// substitution argument. The simulator preserves the five RTM properties
// NV-HALT's correctness rests on:
//
//   1. Eager conflict detection: two concurrent transactions touching the
//      same location, at least one writing, abort at least one of them
//      *before* either can observe inconsistent state.
//   2. Atomic publication: a transaction's writes become visible to every
//      other thread (transactional or not) all-or-nothing at xend.
//   3. Abort-anytime: capacity aborts shaped like an 8-way/64-set L1 for
//      write sets, plus seedable spurious-abort injection.
//   4. Flush instructions inside a transaction abort it (see PmemPool).
//   5. Non-transactional accesses conflict with transactions tracking the
//      location (reads abort writers; writes abort readers and writers).
//
// Mechanism: every shared location (pool word, lock word, global scalar)
// has a LocId; its cache *line* (LocId >> 3, matching RTM's line-granular
// read/write sets) hashes onto a striped conflict table (the simulated
// cache-coherence directory). Transactional writes are buffered in a
// per-thread write set and published at commit while the writer's stripe
// registrations are still held, which is what makes publication atomic for
// all observers. Aborts transfer control back to "xbegin" by throwing
// HtmAbort, caught by the attempt wrapper in the TM runtime.
//
// Hot-path cost model (DESIGN.md Sec. 10): line-granular tracking plus a
// per-thread two-entry line memo means only the *first* access to each
// line pays for hashing, set probes and conflict-table registration;
// repeated same-line accesses (node scans) are one data access plus one
// relaxed status check. The memory-order downgrade argument for each
// non-seq_cst atomic below is spelled out at its site and in Sec. 10.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "htm/conflict_table.hpp"
#include "htm/htm_stats.hpp"
#include "htm/htm_types.hpp"
#include "htm/small_map.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace nvhalt::htm {

struct HtmConfig {
  /// Conflict-table stripes (power of two). Collisions model false sharing.
  std::size_t stripe_count = std::size_t{1} << 14;
  /// Read-set capacity in cache lines (L2/L3-backed read tracking).
  std::size_t max_read_lines = 8192;
  /// Write-set shape: an l1_ways-associative, l1_sets-set L1 cache. A
  /// transaction aborts with kCapacity when more than l1_ways distinct
  /// written lines map to one set ("as few as 9 addresses" in the paper).
  int l1_ways = 8;
  int l1_sets = 64;
  /// Probability that any single transactional access aborts spuriously.
  double spurious_abort_prob = 0.0;
  std::uint64_t seed = 42;
};

class SimHtm {
 public:
  explicit SimHtm(const HtmConfig& cfg = HtmConfig{});
  ~SimHtm();

  SimHtm(const SimHtm&) = delete;
  SimHtm& operator=(const SimHtm&) = delete;

  const HtmConfig& config() const { return cfg_; }

  // ---- Transactional interface (xbegin/xend/xabort) -------------------
  /// Starts a hardware transaction on the calling thread. The thread must
  /// not already be in one (no nesting, as with flattened RTM we model the
  /// outermost transaction only).
  void begin(int tid);

  /// Attempts to commit; on success all buffered writes are published
  /// atomically. Throws HtmAbort if the transaction was doomed.
  void commit(int tid);

  /// Voluntary abort (xabort imm8).
  [[noreturn]] void xabort(int tid, std::uint8_t code);

  /// Aborts and cleans up the calling thread's transaction without
  /// throwing. Used when a foreign exception unwinds through the
  /// transaction body. No-op if the thread is not in a transaction.
  void cancel(int tid);

  /// Transactional load/store. `target` is the backing atomic the location
  /// lives in; `loc` its identity for conflict tracking.
  std::uint64_t load(int tid, LocId loc, const std::atomic<std::uint64_t>* target);
  void store(int tid, LocId loc, std::atomic<std::uint64_t>* target, std::uint64_t val);

  /// Transactional store that also reports whether this is the first
  /// buffered write to `target`, returning the pre-transaction value via
  /// `prev` (ignored when null) when it is. Equivalent to a load+store
  /// pair but pays one write-buffer probe instead of two and no separate
  /// read registration — the writer registration subsumes it. Built for
  /// undo logging on the persisting hardware path.
  bool store_prev(int tid, LocId loc, std::atomic<std::uint64_t>* target, std::uint64_t val,
                  std::uint64_t* prev);

  // ---- Non-transactional interface ------------------------------------
  /// A plain load that respects transactional publication atomicity and
  /// aborts transactions holding `loc` in their write set.
  std::uint64_t nontx_load(int tid, LocId loc, const std::atomic<std::uint64_t>* target);

  /// A plain store; aborts every transaction tracking `loc`.
  void nontx_store(int tid, LocId loc, std::atomic<std::uint64_t>* target, std::uint64_t val);

  /// Cached stripe claim for a run of non-transactional stores (the
  /// persist/apply loop under held locks): consecutive stores whose lines
  /// land on the same stripe reuse one claim instead of paying the
  /// claim/abort-scan/release round per word. Holding the tag across the
  /// run is equivalent to back-to-back nontx_store calls: transactional
  /// readers that registered before the claim are aborted by its reader
  /// scan, readers registering during it observe the tag on their seq_cst
  /// writer check and self-abort, and non-transactional readers wait the
  /// tag out in neutralize_writer_for_load exactly as for a single store.
  /// The caller ends the run with nontx_claim_release; the destructor
  /// backstops exceptional unwinds. The backstop is load-bearing: the
  /// persist loops interleave cached stores with pool calls that throw
  /// when the crash coordinator trips, and a leaked nontx tag has no epoch
  /// by which claim_stripe_nontx could ever detect it as stale — every
  /// later claimant of the stripe would spin forever.
  struct NontxClaim {
    SimHtm* htm = nullptr;
    std::uint32_t stripe = 0;
    std::uint64_t tag = 0;
    bool held = false;
    NontxClaim() = default;
    NontxClaim(const NontxClaim&) = delete;
    NontxClaim& operator=(const NontxClaim&) = delete;
    ~NontxClaim() {
      if (held) htm->release_stripe_nontx(stripe, tag);
    }
  };
  void nontx_store_cached(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                          std::uint64_t val, NontxClaim& claim);
  void nontx_claim_release(NontxClaim& claim);

  /// A plain CAS; aborts every transaction tracking `loc`. Returns true on
  /// success and updates `expected` otherwise.
  bool nontx_cas(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                 std::uint64_t& expected, std::uint64_t desired);

  /// A plain fetch_add; aborts every transaction tracking `loc`.
  std::uint64_t nontx_fetch_add(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                                std::uint64_t delta);

  // ---- Introspection ---------------------------------------------------
  bool thread_in_txn(int tid) const;
  HtmStats aggregate_stats() const;
  void reset_stats();
  const HtmThreadStats& thread_stats(int tid) const;

  /// Clears all conflict-tracking state; only valid when no thread is in a
  /// transaction (used by recovery and tests).
  void reset();

  /// Used by PmemPool via the TLS hooks.
  [[noreturn]] void abort_current_flush();

 private:
  struct Context;

  [[noreturn]] void do_abort(int tid, AbortCause cause, std::uint8_t code = 0);
  void cleanup(int tid, bool committed);
  void check_self(int tid);
  void maybe_spurious(int tid);
  void register_read_line(Context& c, int tid, std::uint64_t line, std::size_t mi);
  void register_write_line(Context& c, int tid, std::uint64_t line, std::size_t mi);
  void abort_reader(int r);
  void neutralize_writer_for_load(std::uint32_t stripe_idx, int self_tid);
  std::uint64_t claim_stripe_nontx(std::uint32_t stripe_idx, int tid);
  void release_stripe_nontx(std::uint32_t stripe_idx, std::uint64_t tag);
  void abort_readers_on_stripe(std::uint32_t stripe_idx, int self_tid);

  /// Canonical location for line/stripe purposes: a colocated lock shares
  /// its word's cache line (that is the point of colocating).
  static LocId canonical(LocId loc) {
    if ((loc >> 60) == static_cast<std::uint64_t>(LocKind::kColoLock))
      return make_loc(LocKind::kPoolWord, loc & ((1ULL << 60) - 1));
    return loc;
  }
  static std::uint64_t line_of(LocId loc) { return canonical(loc) >> 3; }

  /// Memo slot for a line: data lines (kPoolWord, kind bits zero after the
  /// >>3) and metadata lines (lock table / globals) get separate entries so
  /// the lock-then-data access pattern of the hw path does not thrash a
  /// single-entry memo.
  static std::size_t memo_index(std::uint64_t line) { return (line >> 57) != 0 ? 1 : 0; }

  HtmConfig cfg_;
  /// Hoisted from the per-access path: spurious injection is off in every
  /// production configuration, so the per-access RNG draw is gated on one
  /// predictable branch instead of a double compare against config state.
  bool spurious_enabled_;
  ConflictTable table_;
  std::unique_ptr<Context[]> ctx_;
};

}  // namespace nvhalt::htm
