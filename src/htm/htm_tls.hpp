// Thread-local hardware-transaction state, exposed with minimal coupling so
// low-level modules (pmem) can honour "flush aborts the transaction"
// without depending on the full HTM simulator.
#pragma once

namespace nvhalt::htm {

/// True while the calling thread is inside a simulated hardware transaction.
bool in_hw_txn();

/// Aborts the calling thread's hardware transaction with cause kFlush.
/// Precondition: in_hw_txn(). Models clflushopt/clwb aborting RTM.
[[noreturn]] void abort_on_flush();

}  // namespace nvhalt::htm
