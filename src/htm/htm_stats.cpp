#include "htm/htm_stats.hpp"

#include <sstream>

namespace nvhalt::htm {

const char* abort_cause_name(AbortCause c) {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kSpurious: return "spurious";
    case AbortCause::kFlush: return "flush";
    default: return "unknown";
  }
}

void HtmStats::add(const HtmThreadStats& t) {
  begins += t.begins;
  commits += t.commits;
  for (std::size_t i = 0; i < aborts.size(); ++i) aborts[i] += t.aborts[i];
}

std::string HtmStats::to_string() const {
  std::ostringstream os;
  os << "htm{begins=" << begins << " commits=" << commits;
  for (std::size_t i = 0; i < aborts.size(); ++i) {
    if (aborts[i] != 0)
      os << " " << abort_cause_name(static_cast<AbortCause>(i)) << "=" << aborts[i];
  }
  os << "}";
  return os.str();
}

}  // namespace nvhalt::htm
