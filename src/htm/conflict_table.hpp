// Striped conflict table: the simulated cache-coherence substrate through
// which hardware transactions detect conflicts eagerly (as RTM does via
// invalidations). Each cache *line* (LocId >> 3; SimHtm::line_of) hashes to
// a stripe holding a writer tag and per-thread reader bits — tracking at
// line granularity matches RTM's read/write sets and lets SimHtm's per-line
// memo skip re-registration on node scans. Stripe collisions model
// cache-line / set-index false sharing, which real RTM also exhibits.
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/htm_types.hpp"
#include "util/common.hpp"

namespace nvhalt::htm {

/// Number of reader-mask words per stripe.
inline constexpr int kReaderMaskWords = kMaxThreads / 64;

/// Writer tag encoding, stored in Stripe::writer:
///   0                          — no writer
///   (tid+1) << 1 | 1           — non-transactional RMW in progress
///   epoch << 9 | (tid+1) << 1  — transactional writer (epoch disambiguates
///                                 stale registrations across transactions)
struct WriterTag {
  static constexpr std::uint64_t kNone = 0;

  static std::uint64_t tx(int tid, std::uint64_t epoch) {
    return (epoch << 9) | (static_cast<std::uint64_t>(tid + 1) << 1);
  }
  static std::uint64_t nontx(int tid) {
    return (static_cast<std::uint64_t>(tid + 1) << 1) | 1;
  }
  static bool is_nontx(std::uint64_t tag) { return (tag & 1) != 0; }
  static int tid(std::uint64_t tag) { return static_cast<int>((tag >> 1) & 0xFF) - 1; }
  static std::uint64_t epoch(std::uint64_t tag) { return tag >> 9; }
};

struct alignas(kCacheLineBytes) Stripe {
  std::atomic<std::uint64_t> writer{0};
  std::atomic<std::uint64_t> readers[kReaderMaskWords];

  Stripe() {
    for (auto& m : readers) m.store(0, std::memory_order_relaxed);
  }
};

class ConflictTable {
 public:
  /// stripe_count must be a power of two.
  explicit ConflictTable(std::size_t stripe_count = std::size_t{1} << 14);
  ~ConflictTable();

  ConflictTable(const ConflictTable&) = delete;
  ConflictTable& operator=(const ConflictTable&) = delete;

  std::size_t stripe_count() const { return count_; }

  std::uint32_t stripe_of(std::uint64_t line) const {
    // splitmix-style mix so adjacent lines spread across stripes.
    std::uint64_t x = line;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x & (count_ - 1));
  }

  Stripe& stripe(std::uint32_t idx) { return stripes_[idx]; }
  const Stripe& stripe(std::uint32_t idx) const { return stripes_[idx]; }

  /// Sets the caller's reader bit. Returns true if the bit was newly set
  /// (the caller must remember the stripe for cleanup).
  /// MUST stay seq_cst: this fetch_or and the reader's subsequent writer-tag
  /// load form a store-load (Dekker) pair against a writer's tag CAS and
  /// its subsequent reader-mask scan — with anything weaker both sides can
  /// miss each other and neither aborts (see DESIGN.md Sec. 10).
  bool add_reader(std::uint32_t idx, int tid) {
    auto& mask = stripes_[idx].readers[tid / 64];
    const std::uint64_t bit = 1ULL << (tid % 64);
    return (mask.fetch_or(bit, std::memory_order_seq_cst) & bit) == 0;
  }

  /// Release (down from seq_cst): dropping the bit only needs to publish
  /// the reader's completed accesses; a writer that still sees the stale
  /// bit merely issues a harmless abort CAS against a finished epoch.
  void remove_reader(std::uint32_t idx, int tid) {
    auto& mask = stripes_[idx].readers[tid / 64];
    mask.fetch_and(~(1ULL << (tid % 64)), std::memory_order_release);
  }

  /// Clears all state (tests / recovery).
  void reset();

 private:
  std::size_t count_;
  Stripe* stripes_;
};

}  // namespace nvhalt::htm
