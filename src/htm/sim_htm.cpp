#include "htm/sim_htm.hpp"

#include <thread>

#include "htm/htm_tls.hpp"

namespace nvhalt::htm {

namespace {

// Transaction lifecycle states, packed into the low 2 bits of the status
// word; the rest is the transaction epoch. The epoch disambiguates stale
// conflict-table registrations from a thread's earlier transactions.
enum : std::uint64_t { kIdle = 0, kActive = 1, kCommitting = 2, kAborted = 3 };

inline std::uint64_t pack_status(std::uint64_t epoch, std::uint64_t state) {
  return (epoch << 2) | state;
}
inline std::uint64_t status_state(std::uint64_t s) { return s & 3; }
inline std::uint64_t status_epoch(std::uint64_t s) { return s >> 2; }

struct Tls {
  SimHtm* htm = nullptr;
  int tid = -1;
  bool in_txn = false;
};
thread_local Tls g_tls;

}  // namespace

bool in_hw_txn() { return g_tls.in_txn; }

void abort_on_flush() {
  if (!g_tls.in_txn || g_tls.htm == nullptr)
    throw TmLogicError("abort_on_flush outside a hardware transaction");
  g_tls.htm->abort_current_flush();
}

/// Sentinel meaning "memo slot empty"; no real line is all-ones.
inline constexpr std::uint64_t kNoLine = ~std::uint64_t{0};

struct alignas(kCacheLineBytes) SimHtm::Context {
  std::atomic<std::uint64_t> status{pack_status(0, kIdle)};
  std::uint64_t epoch = 0;  // owner's private copy of the current epoch

  // Last-line/last-stripe memo (two entries: data lines, metadata lines).
  // A hit means this transaction already registered the line's stripe and
  // counted the line against capacity, so a repeated access skips the
  // stripe hash, both set probes and all conflict-table traffic. Writer
  // entries additionally record that we hold the stripe's writer tag, which
  // subsumes reader registration: nothing can publish to the line without
  // dooming us first.
  std::uint64_t memo_line[2] = {kNoLine, kNoLine};
  std::uint32_t memo_stripe[2] = {0, 0};
  bool memo_writer[2] = {false, false};

  struct WriteEnt {
    LocId loc;
    std::atomic<std::uint64_t>* target;
    std::uint64_t val;
  };
  std::vector<WriteEnt> write_entries;
  SmallIndexMap write_index;
  std::vector<std::uint32_t> read_stripes;   // reader bits we set
  std::vector<std::uint32_t> write_stripes;  // writer tags we registered
  SmallSet read_stripe_set;                  // stripes already registered
  SmallSet read_lines;
  SmallSet write_lines;
  std::vector<std::uint8_t> l1_set_count;

  Xoshiro256 rng;
  HtmThreadStats stats;
};

SimHtm::SimHtm(const HtmConfig& cfg)
    : cfg_(cfg), spurious_enabled_(cfg.spurious_abort_prob > 0.0), table_(cfg.stripe_count) {
  ctx_ = std::make_unique<Context[]>(kMaxThreads);
  for (int t = 0; t < kMaxThreads; ++t) {
    ctx_[t].rng.reseed(cfg_.seed * 0x100000001B3ULL + static_cast<std::uint64_t>(t));
    ctx_[t].l1_set_count.assign(static_cast<std::size_t>(cfg_.l1_sets), 0);
  }
}

SimHtm::~SimHtm() = default;

bool SimHtm::thread_in_txn(int tid) const {
  return status_state(ctx_[tid].status.load(std::memory_order_acquire)) != kIdle;
}

void SimHtm::begin(int tid) {
  Context& c = ctx_[tid];
  if (g_tls.in_txn) throw TmLogicError("nested hardware transactions are not supported");
  ++c.epoch;
  c.write_entries.clear();
  c.write_index.clear();
  c.read_stripes.clear();
  c.write_stripes.clear();
  c.read_stripe_set.clear();
  c.read_lines.clear();
  c.write_lines.clear();
  c.memo_line[0] = c.memo_line[1] = kNoLine;
  c.memo_writer[0] = c.memo_writer[1] = false;
  std::fill(c.l1_set_count.begin(), c.l1_set_count.end(), std::uint8_t{0});
  c.stats.begins++;
  // Release (down from seq_cst): the store only needs to be visible to
  // threads that later observe one of our conflict-table registrations;
  // those are seq_cst RMWs sequenced after it, so any thread that reads a
  // registration acquires this store along with it.
  c.status.store(pack_status(c.epoch, kActive), std::memory_order_release);
  g_tls = Tls{this, tid, true};
}

void SimHtm::cleanup(int tid, bool committed) {
  Context& c = ctx_[tid];
  const std::uint64_t my_tag = WriterTag::tx(tid, c.epoch);
  for (const std::uint32_t s : c.write_stripes) {
    std::uint64_t expected = my_tag;
    // A non-transactional RMW may have stolen the stripe after aborting us;
    // in that case the thief releases it. acq_rel (down from seq_cst): the
    // release half publishes our committed values to any thread that
    // observes the cleared tag with an acquire load (neutralize / claim).
    table_.stripe(s).writer.compare_exchange_strong(expected, WriterTag::kNone,
                                                    std::memory_order_acq_rel);
  }
  for (const std::uint32_t s : c.read_stripes) table_.remove_reader(s, tid);
  // Release (down from seq_cst): pairs with the acquire status loads in
  // neutralize_writer_for_load / claim_stripe_nontx — a thread that sees
  // kIdle for this epoch sees every value we published before it.
  c.status.store(pack_status(c.epoch, kIdle), std::memory_order_release);
  if (committed) c.stats.commits++;
  g_tls.in_txn = false;
}

void SimHtm::do_abort(int tid, AbortCause cause, std::uint8_t code) {
  Context& c = ctx_[tid];
  c.stats.aborts[static_cast<std::size_t>(cause)]++;
  cleanup(tid, /*committed=*/false);
  throw HtmAbort{cause, code};
}

void SimHtm::abort_current_flush() {
  do_abort(g_tls.tid, AbortCause::kFlush);
}

void SimHtm::check_self(int tid) {
  // Relaxed (down from seq_cst): only our own status word is read, and the
  // one case where timeliness matters — a conflicting writer doomed us and
  // then published — is ordered by the writer's release publication store
  // plus our acquire data load: its abort-CAS on our status is sequenced
  // before its value store, so once our data load returns the published
  // value, this load is guaranteed to observe kAborted.
  Context& c = ctx_[tid];
  const std::uint64_t s = c.status.load(std::memory_order_relaxed);
  if (NVHALT_UNLIKELY(status_state(s) == kAborted)) do_abort(tid, AbortCause::kConflict);
}

void SimHtm::maybe_spurious(int tid) {
  if (ctx_[tid].rng.next_bool(cfg_.spurious_abort_prob))
    do_abort(tid, AbortCause::kSpurious);
}

void SimHtm::xabort(int tid, std::uint8_t code) { do_abort(tid, AbortCause::kExplicit, code); }

void SimHtm::cancel(int tid) {
  if (!g_tls.in_txn) return;
  Context& c = ctx_[tid];
  c.stats.aborts[static_cast<std::size_t>(AbortCause::kExplicit)]++;
  cleanup(tid, /*committed=*/false);
}

// Cold path of load(): first transactional access to `line`. Registers the
// reader bit, performs the eager conflict check, counts the line against
// read capacity and installs the memo entry.
void SimHtm::register_read_line(Context& c, int tid, std::uint64_t line, std::size_t mi) {
  const std::uint32_t s =
      line == c.memo_line[mi] ? c.memo_stripe[mi] : table_.stripe_of(line);
  if (c.read_stripe_set.insert(s)) {
    // First touch of this stripe: register the reader bit and perform the
    // eager conflict check. Later touches can skip both — any writer that
    // registers afterwards must scan the reader bits and abort us through
    // our status word, which the post-load check observes. Both the
    // fetch_or and the writer load stay seq_cst: they form the store-load
    // ("Dekker") pair with a writer's tag-CAS + reader-mask scan, and
    // weakening either side could let both conflict checks miss each other.
    table_.add_reader(s, tid);
    c.read_stripes.push_back(s);
    const std::uint64_t w = table_.stripe(s).writer.load(std::memory_order_seq_cst);
    if (w != WriterTag::kNone && w != WriterTag::tx(tid, c.epoch))
      do_abort(tid, AbortCause::kConflict);
  }
  if (c.read_lines.insert(line) && c.read_lines.size() > cfg_.max_read_lines)
    do_abort(tid, AbortCause::kCapacity);
  c.memo_line[mi] = line;
  c.memo_stripe[mi] = s;
  c.memo_writer[mi] = false;
}

// Cold path of store(): first written access to `line`. Claims the stripe's
// writer tag, aborts conflicting readers, counts the line against the L1
// write-set shape and installs a writer memo entry.
void SimHtm::register_write_line(Context& c, int tid, std::uint64_t line, std::size_t mi) {
  const std::uint32_t s =
      line == c.memo_line[mi] ? c.memo_stripe[mi] : table_.stripe_of(line);
  const std::uint64_t my_tag = WriterTag::tx(tid, c.epoch);
  // Relaxed peek (down from seq_cst): purely an optimization to skip the
  // CAS when we already own the stripe via another line hashing onto it;
  // the seq_cst CAS below is the authoritative conflict check.
  std::uint64_t w = table_.stripe(s).writer.load(std::memory_order_relaxed);
  if (w != my_tag) {
    if (w != WriterTag::kNone) do_abort(tid, AbortCause::kConflict);
    if (!table_.stripe(s).writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst))
      do_abort(tid, AbortCause::kConflict);
    c.write_stripes.push_back(s);
    abort_readers_on_stripe(s, tid);
  }
  if (c.write_lines.insert(line)) {
    const std::size_t set =
        static_cast<std::size_t>(line) & static_cast<std::size_t>(cfg_.l1_sets - 1);
    if (++c.l1_set_count[set] > cfg_.l1_ways) do_abort(tid, AbortCause::kCapacity);
  }
  c.memo_line[mi] = line;
  c.memo_stripe[mi] = s;
  c.memo_writer[mi] = true;
}

std::uint64_t SimHtm::load(int tid, LocId loc, const std::atomic<std::uint64_t>* target) {
  Context& c = ctx_[tid];
  if (NVHALT_UNLIKELY(spurious_enabled_)) maybe_spurious(tid);

  // The write buffer is keyed by the backing word: distinct words may share
  // a LocId line (e.g. a colocated lock and its data word), but each must
  // buffer separately. Read-only transactions skip the probe entirely.
  if (c.write_entries.size() != 0) {
    const std::uint32_t found = c.write_index.find(reinterpret_cast<std::uintptr_t>(target));
    if (found != SmallIndexMap::kNotFound) return c.write_entries[found].val;
  }

  const std::uint64_t line = line_of(loc);
  const std::size_t mi = memo_index(line);
  // Memo hit: the line's stripe is already registered (as reader, or as
  // writer — holding the writer tag subsumes reader registration, since
  // nothing can publish to the line without dooming us first) and the line
  // is already counted against capacity.
  if (NVHALT_UNLIKELY(line != c.memo_line[mi])) register_read_line(c, tid, line, mi);

  // Acquire (down from seq_cst): pairs with the release publication stores
  // in commit() and nontx_store — reading a published value also makes the
  // publisher's earlier abort-CAS on our status visible to check_self.
  const std::uint64_t v = target->load(std::memory_order_acquire);
  // Single fused self-check (was one at entry + one post-access): if a
  // writer aborted us after our registration check, the value may stem
  // from its publication; never return it.
  check_self(tid);
  return v;
}

void SimHtm::store(int tid, LocId loc, std::atomic<std::uint64_t>* target, std::uint64_t val) {
  Context& c = ctx_[tid];
  if (NVHALT_UNLIKELY(spurious_enabled_)) maybe_spurious(tid);

  const std::uint32_t found = c.write_index.find(reinterpret_cast<std::uintptr_t>(target));
  if (found != SmallIndexMap::kNotFound) {
    // Buffered overwrite: no shared-memory effect, so no self-check needed;
    // a doomed transaction's buffer is discarded at its (failing) commit.
    c.write_entries[found].val = val;
    return;
  }

  const std::uint64_t line = line_of(loc);
  const std::size_t mi = memo_index(line);
  // A read-memo entry is not enough for a store: writer registration must
  // still claim the stripe tag, so only a writer memo hit skips the slow
  // path (which also upgrades the memo in place).
  if (NVHALT_UNLIKELY(line != c.memo_line[mi] || !c.memo_writer[mi]))
    register_write_line(c, tid, line, mi);

  c.write_index.insert(reinterpret_cast<std::uintptr_t>(target),
                       static_cast<std::uint32_t>(c.write_entries.size()));
  c.write_entries.push_back({loc, target, val});
  check_self(tid);
}

bool SimHtm::store_prev(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                        std::uint64_t val, std::uint64_t* prev) {
  Context& c = ctx_[tid];
  if (NVHALT_UNLIKELY(spurious_enabled_)) maybe_spurious(tid);

  const std::uint32_t found = c.write_index.find(reinterpret_cast<std::uintptr_t>(target));
  if (found != SmallIndexMap::kNotFound) {
    c.write_entries[found].val = val;
    return false;
  }

  const std::uint64_t line = line_of(loc);
  const std::size_t mi = memo_index(line);
  if (NVHALT_UNLIKELY(line != c.memo_line[mi] || !c.memo_writer[mi]))
    register_write_line(c, tid, line, mi);

  // Pre-image read under our own writer registration: nothing can publish
  // to the line without dooming us first, and check_self below rejects a
  // value that stems from a writer that doomed us after the registration.
  if (prev != nullptr) *prev = target->load(std::memory_order_acquire);

  c.write_index.insert(reinterpret_cast<std::uintptr_t>(target),
                       static_cast<std::uint32_t>(c.write_entries.size()));
  c.write_entries.push_back({loc, target, val});
  check_self(tid);
  return true;
}

void SimHtm::commit(int tid) {
  Context& c = ctx_[tid];
  std::uint64_t expected = pack_status(c.epoch, kActive);
  // The successful CAS to kCommitting is the transaction's atomic commit
  // point; after it no other thread may abort us. Stays seq_cst: it races
  // against abort-CASes from writers and non-transactional accessors, and
  // it must be ordered before the publication stores below.
  if (!c.status.compare_exchange_strong(expected, pack_status(c.epoch, kCommitting),
                                        std::memory_order_seq_cst)) {
    do_abort(tid, AbortCause::kConflict);
  }
  // Publish buffered writes while our writer registrations are still held:
  // transactional readers self-abort on our registration and
  // non-transactional readers wait for it, so publication is atomic.
  // Release (down from seq_cst): a reader that acquires any published value
  // thereby sees every abort-CAS we issued before publishing (check_self's
  // doom-propagation argument) and every earlier value in the buffer
  // (publication-order visibility for non-transactional readers).
  for (const Context::WriteEnt& e : c.write_entries)
    e.target->store(e.val, std::memory_order_release);
  cleanup(tid, /*committed=*/true);
}

void SimHtm::abort_reader(int r) {
  Context& rc = ctx_[r];
  const std::uint64_t s = rc.status.load(std::memory_order_seq_cst);
  if (status_state(s) != kActive) return;  // committing readers already serialized
  std::uint64_t expected = s;
  rc.status.compare_exchange_strong(expected, pack_status(status_epoch(s), kAborted),
                                    std::memory_order_seq_cst);
}

void SimHtm::abort_readers_on_stripe(std::uint32_t stripe_idx, int self_tid) {
  Stripe& st = table_.stripe(stripe_idx);
  for (int word = 0; word < kReaderMaskWords; ++word) {
    std::uint64_t mask = st.readers[word].load(std::memory_order_seq_cst);
    while (mask != 0) {
      const int bit = __builtin_ctzll(mask);
      mask &= mask - 1;
      const int r = word * 64 + bit;
      if (r != self_tid) abort_reader(r);
    }
  }
}

void SimHtm::neutralize_writer_for_load(std::uint32_t stripe_idx, int self_tid) {
  Stripe& st = table_.stripe(stripe_idx);
  int spins = 0;
  for (;;) {
    // Acquire (down from seq_cst): observing the tag cleared (the owner's
    // acq_rel cleanup CAS) makes the owner's published values visible to
    // the caller's subsequent acquire data load. A racing registration we
    // miss here is benign: the writer has not published yet (publication
    // needs kCommitting), so the value we go on to read is the committed
    // pre-state and we linearize before that writer.
    const std::uint64_t w = st.writer.load(std::memory_order_acquire);
    if (w == WriterTag::kNone) return;
    if (WriterTag::is_nontx(w)) {
      // Another thread's brief non-transactional RMW; wait it out.
      if (++spins > 64) std::this_thread::yield(); else cpu_relax();
      continue;
    }
    const int owner = WriterTag::tid(w);
    if (owner == self_tid) return;  // our own stale tag cannot publish
    Context& oc = ctx_[owner];
    // Acquire: pairs with the owner's release kIdle store in cleanup, so
    // seeing a finished epoch implies its publication is fully visible.
    const std::uint64_t s = oc.status.load(std::memory_order_acquire);
    if (status_epoch(s) != WriterTag::epoch(w)) continue;  // stale; re-read stripe
    switch (status_state(s)) {
      case kActive: {
        // RTM: a non-transactional access to a line in a transaction's
        // write set aborts the transaction.
        std::uint64_t expected = s;
        oc.status.compare_exchange_strong(
            expected, pack_status(status_epoch(s), kAborted), std::memory_order_seq_cst);
        continue;
      }
      case kCommitting:
        // Publication in flight; it is atomic, so wait for it to finish.
        if (++spins > 64) std::this_thread::yield(); else cpu_relax();
        continue;
      case kAborted:
        return;  // will never publish; safe to access
      default:
        continue;  // kIdle with matching epoch: cleanup raced us; re-read
    }
  }
}

std::uint64_t SimHtm::claim_stripe_nontx(std::uint32_t stripe_idx, int tid) {
  Stripe& st = table_.stripe(stripe_idx);
  const std::uint64_t my_tag = WriterTag::nontx(tid);
  int spins = 0;
  for (;;) {
    std::uint64_t w = st.writer.load(std::memory_order_seq_cst);
    if (w == WriterTag::kNone) {
      if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
      continue;
    }
    if (WriterTag::is_nontx(w)) {
      if (++spins > 64) std::this_thread::yield(); else cpu_relax();
      continue;
    }
    const int owner = WriterTag::tid(w);
    Context& oc = ctx_[owner];
    const std::uint64_t s = oc.status.load(std::memory_order_seq_cst);
    if (status_epoch(s) != WriterTag::epoch(w)) {
      // Stale transactional tag: the owner finished long ago; steal it.
      if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
      continue;
    }
    switch (status_state(s)) {
      case kActive: {
        std::uint64_t expected = s;
        oc.status.compare_exchange_strong(
            expected, pack_status(status_epoch(s), kAborted), std::memory_order_seq_cst);
        continue;  // owner now aborted; next round steals the tag
      }
      case kCommitting:
        if (++spins > 64) std::this_thread::yield(); else cpu_relax();
        continue;
      case kAborted: {
        // Owner will not publish; take over its registration (its cleanup
        // CAS will simply fail and move on).
        if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
        continue;
      }
      default:
        continue;
    }
  }
}

void SimHtm::release_stripe_nontx(std::uint32_t stripe_idx, std::uint64_t tag) {
  std::uint64_t expected = tag;
  // Acq_rel (down from seq_cst): release publishes the data operation that
  // happened under the claim to the next claimer's acquire/seq_cst loads;
  // nothing after the release needs ordering against it.
  table_.stripe(stripe_idx).writer.compare_exchange_strong(expected, WriterTag::kNone,
                                                           std::memory_order_acq_rel);
}

std::uint64_t SimHtm::nontx_load(int tid, LocId loc, const std::atomic<std::uint64_t>* target) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(line_of(loc));
  neutralize_writer_for_load(s, tid);
  // Acquire (down from seq_cst): pairs with the release publication stores
  // in commit() and the release claim-drop in release_stripe_nontx, making
  // everything the writer did visible once we read its value.
  return target->load(std::memory_order_acquire);
}

void SimHtm::nontx_store(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                         std::uint64_t val) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(line_of(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  // Release (down from seq_cst): observers load with acquire; mutual
  // exclusion against other writers is carried by the stripe claim, not by
  // this store's order.
  target->store(val, std::memory_order_release);
  release_stripe_nontx(s, tag);
}

void SimHtm::nontx_store_cached(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                                std::uint64_t val, NontxClaim& claim) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(line_of(loc));
  if (!claim.held || claim.stripe != s) {
    if (claim.held) release_stripe_nontx(claim.stripe, claim.tag);
    claim.held = false;  // not held while claim_stripe_nontx spins
    claim.tag = claim_stripe_nontx(s, tid);
    claim.stripe = s;
    claim.htm = this;
    claim.held = true;
    abort_readers_on_stripe(s, tid);
  }
  // Release (same as nontx_store): observers load with acquire; exclusion
  // against other writers is carried by the held stripe claim.
  target->store(val, std::memory_order_release);
}

void SimHtm::nontx_claim_release(NontxClaim& claim) {
  if (!claim.held) return;
  release_stripe_nontx(claim.stripe, claim.tag);
  claim.held = false;
}

bool SimHtm::nontx_cas(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                       std::uint64_t& expected, std::uint64_t desired) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(line_of(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  // Stays seq_cst: this CAS *is* the lock/clock operation callers build
  // their own protocols on (versioned locks, SPHT global lock); they are
  // entitled to full sequential consistency from it.
  const bool ok = target->compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  release_stripe_nontx(s, tag);
  return ok;
}

std::uint64_t SimHtm::nontx_fetch_add(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                                      std::uint64_t delta) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(line_of(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  // Stays seq_cst: the global-clock bump other threads order against.
  const std::uint64_t prev = target->fetch_add(delta, std::memory_order_seq_cst);
  release_stripe_nontx(s, tag);
  return prev;
}

HtmStats SimHtm::aggregate_stats() const {
  HtmStats agg;
  for (int t = 0; t < kMaxThreads; ++t) agg.add(ctx_[t].stats);
  return agg;
}

void SimHtm::reset_stats() {
  for (int t = 0; t < kMaxThreads; ++t) ctx_[t].stats.reset();
}

const HtmThreadStats& SimHtm::thread_stats(int tid) const { return ctx_[tid].stats; }

void SimHtm::reset() {
  // Force-clear: after a simulated crash, threads died mid-transaction and
  // their statuses/registrations are stale. Only valid quiescently.
  for (int t = 0; t < kMaxThreads; ++t) {
    Context& c = ctx_[t];
    c.status.store(pack_status(status_epoch(c.status.load(std::memory_order_relaxed)), kIdle),
                   std::memory_order_relaxed);
  }
  table_.reset();
}

}  // namespace nvhalt::htm
