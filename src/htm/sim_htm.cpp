#include "htm/sim_htm.hpp"

#include <thread>

#include "htm/htm_tls.hpp"

namespace nvhalt::htm {

namespace {

// Transaction lifecycle states, packed into the low 2 bits of the status
// word; the rest is the transaction epoch. The epoch disambiguates stale
// conflict-table registrations from a thread's earlier transactions.
enum : std::uint64_t { kIdle = 0, kActive = 1, kCommitting = 2, kAborted = 3 };

inline std::uint64_t pack_status(std::uint64_t epoch, std::uint64_t state) {
  return (epoch << 2) | state;
}
inline std::uint64_t status_state(std::uint64_t s) { return s & 3; }
inline std::uint64_t status_epoch(std::uint64_t s) { return s >> 2; }

struct Tls {
  SimHtm* htm = nullptr;
  int tid = -1;
  bool in_txn = false;
};
thread_local Tls g_tls;

}  // namespace

bool in_hw_txn() { return g_tls.in_txn; }

void abort_on_flush() {
  if (!g_tls.in_txn || g_tls.htm == nullptr)
    throw TmLogicError("abort_on_flush outside a hardware transaction");
  g_tls.htm->abort_current_flush();
}

struct alignas(kCacheLineBytes) SimHtm::Context {
  std::atomic<std::uint64_t> status{pack_status(0, kIdle)};
  std::uint64_t epoch = 0;  // owner's private copy of the current epoch

  struct WriteEnt {
    LocId loc;
    std::atomic<std::uint64_t>* target;
    std::uint64_t val;
  };
  std::vector<WriteEnt> write_entries;
  SmallIndexMap write_index;
  std::vector<std::uint32_t> read_stripes;   // reader bits we set
  std::vector<std::uint32_t> write_stripes;  // writer tags we registered
  SmallSet read_stripe_set;                  // stripes already registered
  SmallSet read_lines;
  SmallSet write_lines;
  std::vector<std::uint8_t> l1_set_count;

  Xoshiro256 rng;
  HtmThreadStats stats;
};

SimHtm::SimHtm(const HtmConfig& cfg) : cfg_(cfg), table_(cfg.stripe_count) {
  ctx_ = std::make_unique<Context[]>(kMaxThreads);
  for (int t = 0; t < kMaxThreads; ++t) {
    ctx_[t].rng.reseed(cfg_.seed * 0x100000001B3ULL + static_cast<std::uint64_t>(t));
    ctx_[t].l1_set_count.assign(static_cast<std::size_t>(cfg_.l1_sets), 0);
  }
}

SimHtm::~SimHtm() = default;

bool SimHtm::thread_in_txn(int tid) const {
  return status_state(ctx_[tid].status.load(std::memory_order_acquire)) != kIdle;
}

void SimHtm::begin(int tid) {
  Context& c = ctx_[tid];
  if (g_tls.in_txn) throw TmLogicError("nested hardware transactions are not supported");
  ++c.epoch;
  c.write_entries.clear();
  c.write_index.clear();
  c.read_stripes.clear();
  c.write_stripes.clear();
  c.read_stripe_set.clear();
  c.read_lines.clear();
  c.write_lines.clear();
  std::fill(c.l1_set_count.begin(), c.l1_set_count.end(), std::uint8_t{0});
  c.stats.begins++;
  c.status.store(pack_status(c.epoch, kActive), std::memory_order_seq_cst);
  g_tls = Tls{this, tid, true};
}

void SimHtm::cleanup(int tid, bool committed) {
  Context& c = ctx_[tid];
  const std::uint64_t my_tag = WriterTag::tx(tid, c.epoch);
  for (const std::uint32_t s : c.write_stripes) {
    std::uint64_t expected = my_tag;
    // A non-transactional RMW may have stolen the stripe after aborting us;
    // in that case the thief releases it.
    table_.stripe(s).writer.compare_exchange_strong(expected, WriterTag::kNone,
                                                    std::memory_order_seq_cst);
  }
  for (const std::uint32_t s : c.read_stripes) table_.remove_reader(s, tid);
  c.status.store(pack_status(c.epoch, kIdle), std::memory_order_seq_cst);
  if (committed) c.stats.commits++;
  g_tls.in_txn = false;
}

void SimHtm::do_abort(int tid, AbortCause cause, std::uint8_t code) {
  Context& c = ctx_[tid];
  c.stats.aborts[static_cast<std::size_t>(cause)]++;
  cleanup(tid, /*committed=*/false);
  throw HtmAbort{cause, code};
}

void SimHtm::abort_current_flush() {
  do_abort(g_tls.tid, AbortCause::kFlush);
}

void SimHtm::check_self(int tid) {
  Context& c = ctx_[tid];
  const std::uint64_t s = c.status.load(std::memory_order_seq_cst);
  if (NVHALT_UNLIKELY(status_state(s) == kAborted)) do_abort(tid, AbortCause::kConflict);
}

void SimHtm::maybe_spurious(int tid) {
  if (NVHALT_UNLIKELY(cfg_.spurious_abort_prob > 0.0) &&
      ctx_[tid].rng.next_bool(cfg_.spurious_abort_prob)) {
    do_abort(tid, AbortCause::kSpurious);
  }
}

void SimHtm::xabort(int tid, std::uint8_t code) { do_abort(tid, AbortCause::kExplicit, code); }

void SimHtm::cancel(int tid) {
  if (!g_tls.in_txn) return;
  Context& c = ctx_[tid];
  c.stats.aborts[static_cast<std::size_t>(AbortCause::kExplicit)]++;
  cleanup(tid, /*committed=*/false);
}

std::uint64_t SimHtm::load(int tid, LocId loc, const std::atomic<std::uint64_t>* target) {
  Context& c = ctx_[tid];
  check_self(tid);
  maybe_spurious(tid);

  // The write buffer is keyed by the backing word: distinct words may share
  // a LocId line (e.g. a colocated lock and its data word), but each must
  // buffer separately.
  const std::uint32_t found = c.write_index.find(reinterpret_cast<std::uintptr_t>(target));
  if (found != SmallIndexMap::kNotFound) return c.write_entries[found].val;

  const std::uint32_t s = table_.stripe_of(canonical(loc));
  if (c.read_stripe_set.insert(s)) {
    // First touch of this stripe: register the reader bit and perform the
    // eager conflict check. Later touches can skip both — any writer that
    // registers afterwards must scan the reader bits and abort us through
    // our status word, which the post-load check below observes.
    table_.add_reader(s, tid);
    c.read_stripes.push_back(s);
    const std::uint64_t w = table_.stripe(s).writer.load(std::memory_order_seq_cst);
    if (w != WriterTag::kNone && w != WriterTag::tx(tid, c.epoch))
      do_abort(tid, AbortCause::kConflict);
  }

  if (c.read_lines.insert(line_of(loc)) && c.read_lines.size() > cfg_.max_read_lines)
    do_abort(tid, AbortCause::kCapacity);

  const std::uint64_t v = target->load(std::memory_order_seq_cst);
  // Post-load validation: if a writer aborted us after our conflict check,
  // the value may stem from its publication; never return it.
  check_self(tid);
  return v;
}

void SimHtm::store(int tid, LocId loc, std::atomic<std::uint64_t>* target, std::uint64_t val) {
  Context& c = ctx_[tid];
  check_self(tid);
  maybe_spurious(tid);

  const std::uint32_t found = c.write_index.find(reinterpret_cast<std::uintptr_t>(target));
  if (found != SmallIndexMap::kNotFound) {
    c.write_entries[found].val = val;
    return;
  }

  const std::uint32_t s = table_.stripe_of(canonical(loc));
  const std::uint64_t my_tag = WriterTag::tx(tid, c.epoch);
  std::uint64_t w = table_.stripe(s).writer.load(std::memory_order_seq_cst);
  if (w != my_tag) {
    if (w != WriterTag::kNone) do_abort(tid, AbortCause::kConflict);
    if (!table_.stripe(s).writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst))
      do_abort(tid, AbortCause::kConflict);
    c.write_stripes.push_back(s);
    abort_readers_on_stripe(s, tid);
  }

  if (c.write_lines.insert(line_of(loc))) {
    const std::size_t set = static_cast<std::size_t>(line_of(loc)) &
                            static_cast<std::size_t>(cfg_.l1_sets - 1);
    if (++c.l1_set_count[set] > cfg_.l1_ways) do_abort(tid, AbortCause::kCapacity);
  }

  c.write_index.insert(reinterpret_cast<std::uintptr_t>(target),
                       static_cast<std::uint32_t>(c.write_entries.size()));
  c.write_entries.push_back({loc, target, val});
  check_self(tid);
}

void SimHtm::commit(int tid) {
  Context& c = ctx_[tid];
  std::uint64_t expected = pack_status(c.epoch, kActive);
  // The successful CAS to kCommitting is the transaction's atomic commit
  // point; after it no other thread may abort us.
  if (!c.status.compare_exchange_strong(expected, pack_status(c.epoch, kCommitting),
                                        std::memory_order_seq_cst)) {
    do_abort(tid, AbortCause::kConflict);
  }
  // Publish buffered writes while our writer registrations are still held:
  // transactional readers self-abort on our registration and
  // non-transactional readers wait for it, so publication is atomic.
  for (const Context::WriteEnt& e : c.write_entries)
    e.target->store(e.val, std::memory_order_seq_cst);
  cleanup(tid, /*committed=*/true);
}

void SimHtm::abort_reader(int r) {
  Context& rc = ctx_[r];
  const std::uint64_t s = rc.status.load(std::memory_order_seq_cst);
  if (status_state(s) != kActive) return;  // committing readers already serialized
  std::uint64_t expected = s;
  rc.status.compare_exchange_strong(expected, pack_status(status_epoch(s), kAborted),
                                    std::memory_order_seq_cst);
}

void SimHtm::abort_readers_on_stripe(std::uint32_t stripe_idx, int self_tid) {
  Stripe& st = table_.stripe(stripe_idx);
  for (int word = 0; word < kReaderMaskWords; ++word) {
    std::uint64_t mask = st.readers[word].load(std::memory_order_seq_cst);
    while (mask != 0) {
      const int bit = __builtin_ctzll(mask);
      mask &= mask - 1;
      const int r = word * 64 + bit;
      if (r != self_tid) abort_reader(r);
    }
  }
}

void SimHtm::neutralize_writer_for_load(std::uint32_t stripe_idx, int self_tid) {
  Stripe& st = table_.stripe(stripe_idx);
  int spins = 0;
  for (;;) {
    const std::uint64_t w = st.writer.load(std::memory_order_seq_cst);
    if (w == WriterTag::kNone) return;
    if (WriterTag::is_nontx(w)) {
      // Another thread's brief non-transactional RMW; wait it out.
      if (++spins > 64) std::this_thread::yield(); else cpu_relax();
      continue;
    }
    const int owner = WriterTag::tid(w);
    if (owner == self_tid) return;  // our own stale tag cannot publish
    Context& oc = ctx_[owner];
    const std::uint64_t s = oc.status.load(std::memory_order_seq_cst);
    if (status_epoch(s) != WriterTag::epoch(w)) continue;  // stale; re-read stripe
    switch (status_state(s)) {
      case kActive: {
        // RTM: a non-transactional access to a line in a transaction's
        // write set aborts the transaction.
        std::uint64_t expected = s;
        oc.status.compare_exchange_strong(
            expected, pack_status(status_epoch(s), kAborted), std::memory_order_seq_cst);
        continue;
      }
      case kCommitting:
        // Publication in flight; it is atomic, so wait for it to finish.
        if (++spins > 64) std::this_thread::yield(); else cpu_relax();
        continue;
      case kAborted:
        return;  // will never publish; safe to access
      default:
        continue;  // kIdle with matching epoch: cleanup raced us; re-read
    }
  }
}

std::uint64_t SimHtm::claim_stripe_nontx(std::uint32_t stripe_idx, int tid) {
  Stripe& st = table_.stripe(stripe_idx);
  const std::uint64_t my_tag = WriterTag::nontx(tid);
  int spins = 0;
  for (;;) {
    std::uint64_t w = st.writer.load(std::memory_order_seq_cst);
    if (w == WriterTag::kNone) {
      if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
      continue;
    }
    if (WriterTag::is_nontx(w)) {
      if (++spins > 64) std::this_thread::yield(); else cpu_relax();
      continue;
    }
    const int owner = WriterTag::tid(w);
    Context& oc = ctx_[owner];
    const std::uint64_t s = oc.status.load(std::memory_order_seq_cst);
    if (status_epoch(s) != WriterTag::epoch(w)) {
      // Stale transactional tag: the owner finished long ago; steal it.
      if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
      continue;
    }
    switch (status_state(s)) {
      case kActive: {
        std::uint64_t expected = s;
        oc.status.compare_exchange_strong(
            expected, pack_status(status_epoch(s), kAborted), std::memory_order_seq_cst);
        continue;  // owner now aborted; next round steals the tag
      }
      case kCommitting:
        if (++spins > 64) std::this_thread::yield(); else cpu_relax();
        continue;
      case kAborted: {
        // Owner will not publish; take over its registration (its cleanup
        // CAS will simply fail and move on).
        if (st.writer.compare_exchange_strong(w, my_tag, std::memory_order_seq_cst)) return my_tag;
        continue;
      }
      default:
        continue;
    }
  }
}

void SimHtm::release_stripe_nontx(std::uint32_t stripe_idx, std::uint64_t tag) {
  std::uint64_t expected = tag;
  table_.stripe(stripe_idx).writer.compare_exchange_strong(expected, WriterTag::kNone,
                                                           std::memory_order_seq_cst);
}

std::uint64_t SimHtm::nontx_load(int tid, LocId loc, const std::atomic<std::uint64_t>* target) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(canonical(loc));
  neutralize_writer_for_load(s, tid);
  return target->load(std::memory_order_seq_cst);
}

void SimHtm::nontx_store(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                         std::uint64_t val) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(canonical(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  target->store(val, std::memory_order_seq_cst);
  release_stripe_nontx(s, tag);
}

bool SimHtm::nontx_cas(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                       std::uint64_t& expected, std::uint64_t desired) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(canonical(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  const bool ok = target->compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  release_stripe_nontx(s, tag);
  return ok;
}

std::uint64_t SimHtm::nontx_fetch_add(int tid, LocId loc, std::atomic<std::uint64_t>* target,
                                      std::uint64_t delta) {
  if (g_tls.in_txn) throw TmLogicError("non-transactional access inside a hardware transaction");
  const std::uint32_t s = table_.stripe_of(canonical(loc));
  const std::uint64_t tag = claim_stripe_nontx(s, tid);
  abort_readers_on_stripe(s, tid);
  const std::uint64_t prev = target->fetch_add(delta, std::memory_order_seq_cst);
  release_stripe_nontx(s, tag);
  return prev;
}

HtmStats SimHtm::aggregate_stats() const {
  HtmStats agg;
  for (int t = 0; t < kMaxThreads; ++t) agg.add(ctx_[t].stats);
  return agg;
}

void SimHtm::reset_stats() {
  for (int t = 0; t < kMaxThreads; ++t) ctx_[t].stats.reset();
}

const HtmThreadStats& SimHtm::thread_stats(int tid) const { return ctx_[tid].stats; }

void SimHtm::reset() {
  // Force-clear: after a simulated crash, threads died mid-transaction and
  // their statuses/registrations are stale. Only valid quiescently.
  for (int t = 0; t < kMaxThreads; ++t) {
    Context& c = ctx_[t];
    c.status.store(pack_status(status_epoch(c.status.load(std::memory_order_relaxed)), kIdle),
                   std::memory_order_relaxed);
  }
  table_.reset();
}

}  // namespace nvhalt::htm
