// Per-thread hardware-transaction statistics, aggregated for reporting.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "htm/htm_types.hpp"
#include "util/common.hpp"

namespace nvhalt::htm {

struct HtmThreadStats {
  std::uint64_t begins = 0;
  std::uint64_t commits = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(AbortCause::kNumCauses)> aborts{};

  std::uint64_t total_aborts() const {
    std::uint64_t s = 0;
    for (auto a : aborts) s += a;
    return s;
  }

  void reset() { *this = HtmThreadStats{}; }
};

/// Aggregate over all threads.
struct HtmStats {
  std::uint64_t begins = 0;
  std::uint64_t commits = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(AbortCause::kNumCauses)> aborts{};

  std::uint64_t total_aborts() const {
    std::uint64_t s = 0;
    for (auto a : aborts) s += a;
    return s;
  }

  void add(const HtmThreadStats& t);
  std::string to_string() const;
};

}  // namespace nvhalt::htm
