// Shared types for the simulated best-effort HTM (Intel RTM semantics).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace nvhalt::htm {

/// Why a hardware transaction aborted. Mirrors the abort classes visible
/// through RTM's EAX status (conflict, capacity, explicit xabort) plus the
/// "any reason" spurious class and flush-in-txn (clflushopt aborts).
enum class AbortCause : std::uint8_t {
  kConflict = 0,   // tracking-set conflict with another thread
  kCapacity = 1,   // tracking set overflowed the simulated L1 shape
  kExplicit = 2,   // user xabort(code)
  kSpurious = 3,   // injected abort-for-any-reason
  kFlush = 4,      // persistence instruction inside the transaction
  kNumCauses = 5,
};

const char* abort_cause_name(AbortCause c);

/// Thrown to transfer control back to xbegin when a hardware transaction
/// aborts. Intentionally not derived from std::exception: transaction
/// bodies that catch std::exception must not swallow an HTM abort.
struct HtmAbort {
  AbortCause cause;
  std::uint8_t code = 0;  // xabort code when cause == kExplicit
};

/// Location identifier for conflict tracking. Every shared memory location
/// that any transaction path can touch has a LocId; the conflict table is
/// keyed by a hash of it (stripe), modelling cache-line granularity.
using LocId = std::uint64_t;

enum class LocKind : std::uint64_t {
  kPoolWord = 0,   // user data word in the persistent pool
  kLockTable = 1,  // entry in a fixed-size lock table
  kColoLock = 2,   // colocated per-word lock
  kGlobal = 3,     // global scalar (clocks, fallback locks, markers)
};

constexpr LocId make_loc(LocKind kind, std::uint64_t index) {
  return (static_cast<std::uint64_t>(kind) << 60) | index;
}
constexpr LocId loc_pool(gaddr_t a) { return make_loc(LocKind::kPoolWord, a); }
/// Lock-table entries are physically padded to one per cache line
/// (LockSpace), so their LocIds are spread one per *conflict line* too
/// (tracking is line-granular, loc >> 3): without the scaling, eight
/// adjacent table entries would falsely share one tracked line.
constexpr LocId loc_lock(std::uint64_t i) { return make_loc(LocKind::kLockTable, i * kWordsPerLine); }
constexpr LocId loc_colock(gaddr_t a) { return make_loc(LocKind::kColoLock, a); }
constexpr LocId loc_global(std::uint64_t i) { return make_loc(LocKind::kGlobal, i); }

// NV-HALT's global scalars (the SP software clock and the commit sequence)
// deliberately have no LocId: no hardware transaction ever reads or writes
// them transactionally (Fig. 7 — gClock and the sequence are software-path
// state), so routing them through the conflict table would only model
// coherence traffic on lines no simulated cache tracks. They are accessed
// with plain atomics; each site documents the ordering it relies on.

}  // namespace nvhalt::htm
