file(REMOVE_RECURSE
  "CMakeFiles/bench_microcost.dir/bench_common.cpp.o"
  "CMakeFiles/bench_microcost.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_microcost.dir/bench_microcost.cpp.o"
  "CMakeFiles/bench_microcost.dir/bench_microcost.cpp.o.d"
  "bench_microcost"
  "bench_microcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
