# Empty compiler generated dependencies file for bench_microcost.
# This may be replaced when dependencies are built.
