file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_abtree.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig8_abtree.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig8_abtree.dir/bench_fig8_abtree.cpp.o"
  "CMakeFiles/bench_fig8_abtree.dir/bench_fig8_abtree.cpp.o.d"
  "bench_fig8_abtree"
  "bench_fig8_abtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_abtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
