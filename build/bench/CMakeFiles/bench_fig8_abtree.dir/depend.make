# Empty dependencies file for bench_fig8_abtree.
# This may be replaced when dependencies are built.
