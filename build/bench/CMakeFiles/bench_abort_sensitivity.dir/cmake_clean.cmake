file(REMOVE_RECURSE
  "CMakeFiles/bench_abort_sensitivity.dir/bench_abort_sensitivity.cpp.o"
  "CMakeFiles/bench_abort_sensitivity.dir/bench_abort_sensitivity.cpp.o.d"
  "CMakeFiles/bench_abort_sensitivity.dir/bench_common.cpp.o"
  "CMakeFiles/bench_abort_sensitivity.dir/bench_common.cpp.o.d"
  "bench_abort_sensitivity"
  "bench_abort_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abort_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
