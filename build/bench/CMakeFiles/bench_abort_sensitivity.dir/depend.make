# Empty dependencies file for bench_abort_sensitivity.
# This may be replaced when dependencies are built.
