# Empty compiler generated dependencies file for bench_fig8_hashmap.
# This may be replaced when dependencies are built.
