file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hashmap.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig8_hashmap.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig8_hashmap.dir/bench_fig8_hashmap.cpp.o"
  "CMakeFiles/bench_fig8_hashmap.dir/bench_fig8_hashmap.cpp.o.d"
  "bench_fig8_hashmap"
  "bench_fig8_hashmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
