file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_livelock.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6_livelock.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6_livelock.dir/bench_fig6_livelock.cpp.o"
  "CMakeFiles/bench_fig6_livelock.dir/bench_fig6_livelock.cpp.o.d"
  "bench_fig6_livelock"
  "bench_fig6_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
