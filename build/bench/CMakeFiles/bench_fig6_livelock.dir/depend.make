# Empty dependencies file for bench_fig6_livelock.
# This may be replaced when dependencies are built.
