file(REMOVE_RECURSE
  "libnvhalt.a"
)
