# Empty dependencies file for nvhalt.
# This may be replaced when dependencies are built.
