
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/segment.cpp" "src/CMakeFiles/nvhalt.dir/alloc/segment.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/alloc/segment.cpp.o.d"
  "/root/repo/src/alloc/tx_allocator.cpp" "src/CMakeFiles/nvhalt.dir/alloc/tx_allocator.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/alloc/tx_allocator.cpp.o.d"
  "/root/repo/src/api/root_registry.cpp" "src/CMakeFiles/nvhalt.dir/api/root_registry.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/api/root_registry.cpp.o.d"
  "/root/repo/src/api/tm_factory.cpp" "src/CMakeFiles/nvhalt.dir/api/tm_factory.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/api/tm_factory.cpp.o.d"
  "/root/repo/src/baselines/spht/spht_log.cpp" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_log.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_log.cpp.o.d"
  "/root/repo/src/baselines/spht/spht_replay.cpp" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_replay.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_replay.cpp.o.d"
  "/root/repo/src/baselines/spht/spht_tm.cpp" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_tm.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/baselines/spht/spht_tm.cpp.o.d"
  "/root/repo/src/baselines/trinity/trinity_tm.cpp" "src/CMakeFiles/nvhalt.dir/baselines/trinity/trinity_tm.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/baselines/trinity/trinity_tm.cpp.o.d"
  "/root/repo/src/core/hw_path.cpp" "src/CMakeFiles/nvhalt.dir/core/hw_path.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/core/hw_path.cpp.o.d"
  "/root/repo/src/core/nvhalt_tm.cpp" "src/CMakeFiles/nvhalt.dir/core/nvhalt_tm.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/core/nvhalt_tm.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/nvhalt.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/sw_path.cpp" "src/CMakeFiles/nvhalt.dir/core/sw_path.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/core/sw_path.cpp.o.d"
  "/root/repo/src/core/tm_stats.cpp" "src/CMakeFiles/nvhalt.dir/core/tm_stats.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/core/tm_stats.cpp.o.d"
  "/root/repo/src/htm/conflict_table.cpp" "src/CMakeFiles/nvhalt.dir/htm/conflict_table.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/htm/conflict_table.cpp.o.d"
  "/root/repo/src/htm/htm_stats.cpp" "src/CMakeFiles/nvhalt.dir/htm/htm_stats.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/htm/htm_stats.cpp.o.d"
  "/root/repo/src/htm/sim_htm.cpp" "src/CMakeFiles/nvhalt.dir/htm/sim_htm.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/htm/sim_htm.cpp.o.d"
  "/root/repo/src/locks/lock_table.cpp" "src/CMakeFiles/nvhalt.dir/locks/lock_table.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/locks/lock_table.cpp.o.d"
  "/root/repo/src/locks/versioned_lock.cpp" "src/CMakeFiles/nvhalt.dir/locks/versioned_lock.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/locks/versioned_lock.cpp.o.d"
  "/root/repo/src/pmem/crash_sim.cpp" "src/CMakeFiles/nvhalt.dir/pmem/crash_sim.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/pmem/crash_sim.cpp.o.d"
  "/root/repo/src/pmem/pmem_inspector.cpp" "src/CMakeFiles/nvhalt.dir/pmem/pmem_inspector.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/pmem/pmem_inspector.cpp.o.d"
  "/root/repo/src/pmem/pmem_pool.cpp" "src/CMakeFiles/nvhalt.dir/pmem/pmem_pool.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/pmem/pmem_pool.cpp.o.d"
  "/root/repo/src/structures/tm_abtree.cpp" "src/CMakeFiles/nvhalt.dir/structures/tm_abtree.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/structures/tm_abtree.cpp.o.d"
  "/root/repo/src/structures/tm_hashmap.cpp" "src/CMakeFiles/nvhalt.dir/structures/tm_hashmap.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/structures/tm_hashmap.cpp.o.d"
  "/root/repo/src/structures/tm_list.cpp" "src/CMakeFiles/nvhalt.dir/structures/tm_list.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/structures/tm_list.cpp.o.d"
  "/root/repo/src/structures/tm_queue.cpp" "src/CMakeFiles/nvhalt.dir/structures/tm_queue.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/structures/tm_queue.cpp.o.d"
  "/root/repo/src/structures/tm_skiplist.cpp" "src/CMakeFiles/nvhalt.dir/structures/tm_skiplist.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/structures/tm_skiplist.cpp.o.d"
  "/root/repo/src/util/affinity.cpp" "src/CMakeFiles/nvhalt.dir/util/affinity.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/util/affinity.cpp.o.d"
  "/root/repo/src/util/barrier.cpp" "src/CMakeFiles/nvhalt.dir/util/barrier.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/util/barrier.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/nvhalt.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/util/rng.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/nvhalt.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/nvhalt.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
