# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/locks_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/nvhalt_core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/structures_test[1]_include.cmake")
include("/root/repo/build/tests/opacity_test[1]_include.cmake")
include("/root/repo/build/tests/progress_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_unit_test[1]_include.cmake")
