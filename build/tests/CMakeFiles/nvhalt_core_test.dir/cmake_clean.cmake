file(REMOVE_RECURSE
  "CMakeFiles/nvhalt_core_test.dir/nvhalt_core_test.cpp.o"
  "CMakeFiles/nvhalt_core_test.dir/nvhalt_core_test.cpp.o.d"
  "nvhalt_core_test"
  "nvhalt_core_test.pdb"
  "nvhalt_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvhalt_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
