# Empty compiler generated dependencies file for nvhalt_core_test.
# This may be replaced when dependencies are built.
