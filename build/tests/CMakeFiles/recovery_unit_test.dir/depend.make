# Empty dependencies file for recovery_unit_test.
# This may be replaced when dependencies are built.
