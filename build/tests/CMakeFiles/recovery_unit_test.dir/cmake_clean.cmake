file(REMOVE_RECURSE
  "CMakeFiles/recovery_unit_test.dir/recovery_unit_test.cpp.o"
  "CMakeFiles/recovery_unit_test.dir/recovery_unit_test.cpp.o.d"
  "recovery_unit_test"
  "recovery_unit_test.pdb"
  "recovery_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
