file(REMOVE_RECURSE
  "CMakeFiles/ordered_index.dir/ordered_index.cpp.o"
  "CMakeFiles/ordered_index.dir/ordered_index.cpp.o.d"
  "ordered_index"
  "ordered_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
