file(REMOVE_RECURSE
  "CMakeFiles/persistent_kv_store.dir/persistent_kv_store.cpp.o"
  "CMakeFiles/persistent_kv_store.dir/persistent_kv_store.cpp.o.d"
  "persistent_kv_store"
  "persistent_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
