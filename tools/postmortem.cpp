// postmortem: render a flight-recorder postmortem artifact (written by
// crash_sweep --postmortem or telemetry::serialize_postmortem) as a human
// report or chrome://tracing JSON, or just validate it.
//
//   postmortem <report.txt>                 human-readable summary (stdout)
//   postmortem <report.txt> --chrome out.json   chrome://tracing conversion
//   postmortem --check <report.txt>         parse + sanity-check, no output
//
// --check verifies the file parses and each thread section's record count
// matches its header. Exit status 0 on success, 1 on any failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace_io.hpp"

namespace tel = nvhalt::telemetry;

namespace {

int usage() {
  std::cerr << "usage: postmortem <report.txt> [--chrome out.json]\n"
               "       postmortem --check <report.txt>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string in_path, chrome_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--check") {
      check_only = true;
    } else if (a == "--chrome") {
      if (++i >= argc) return usage();
      chrome_path = argv[i];
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (in_path.empty()) {
      in_path = a;
    } else {
      return usage();
    }
  }
  if (in_path.empty()) return usage();

  std::ifstream is(in_path);
  if (!is) {
    std::cerr << "postmortem: cannot open " << in_path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  tel::PostmortemReport report;
  std::string tm_name, err;
  if (!tel::parse_postmortem(buf.str(), report, &tm_name, &err)) {
    std::cerr << "postmortem: " << in_path << ": " << err << "\n";
    return 1;
  }

  if (check_only) {
    std::cerr << "postmortem: ok: tm=" << tm_name << " threads="
              << report.per_thread.size() << " valid=" << report.total_valid
              << " torn=" << report.total_torn << "\n";
    return 0;
  }

  if (!chrome_path.empty()) {
    // Reuse the chrome writer: postmortem records become a TraceDump with
    // ticks = sequence numbers (ticks_per_us = 1).
    tel::TraceDump dump;
    dump.ticks_per_us = 1.0;
    dump.threads = tel::postmortem_to_traces(report);
    if (!tel::write_chrome_trace_file(chrome_path, dump)) {
      std::cerr << "postmortem: cannot write " << chrome_path << "\n";
      return 1;
    }
    return 0;
  }

  std::cout << "tm=" << tm_name << "\n" << report.to_string();
  return 0;
}
