// trace_dump: convert a raw nvhalt trace (written by crash_sweep
// --trace-out or any binary calling telemetry::write_raw_trace_file) into
// chrome://tracing JSON, or just validate it.
//
//   trace_dump <trace.txt> [-o out.json]   convert (default out: stdout)
//   trace_dump --check <trace.txt>         parse + sanity-check, no output
//
// --check verifies the file parses, every ring's event count is consistent
// with its pushed/dropped header, and prints a one-line summary. Exit
// status 0 on success, 1 on any parse or consistency failure.
#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/trace_io.hpp"

namespace tel = nvhalt::telemetry;

namespace {

int usage() {
  std::cerr << "usage: trace_dump <trace.txt> [-o out.json]\n"
               "       trace_dump --check <trace.txt>\n";
  return 2;
}

bool check_dump(const tel::TraceDump& dump) {
  bool ok = true;
  for (const tel::ThreadTrace& t : dump.threads) {
    // The snapshot keeps at most `capacity` surviving events and the header
    // records the monotonic totals; surviving + dropped can exceed pushed
    // only if the file was corrupted or hand-edited.
    if (t.events.size() + t.dropped > t.pushed) {
      std::cerr << "trace_dump: tid " << t.tid << ": " << t.events.size()
                << " events + " << t.dropped << " dropped > pushed " << t.pushed
                << "\n";
      ok = false;
    }
    // With the ring capacity round-tripped in the header, dropped is fully
    // reconstructible: the ring keeps at most `capacity` survivors, so
    // dropped must equal pushed - events when the ring wrapped.
    if (t.capacity > 0) {
      if (t.events.size() > t.capacity) {
        std::cerr << "trace_dump: tid " << t.tid << ": " << t.events.size()
                  << " events exceed ring capacity " << t.capacity << "\n";
        ok = false;
      }
      if (t.pushed - t.dropped != t.events.size()) {
        std::cerr << "trace_dump: tid " << t.tid << ": pushed " << t.pushed
                  << " - dropped " << t.dropped << " != surviving events "
                  << t.events.size() << "\n";
        ok = false;
      }
    }
    std::uint64_t prev = 0;
    for (const tel::TraceEvent& e : t.events) {
      if (e.ticks < prev) {
        std::cerr << "trace_dump: tid " << t.tid
                  << ": non-monotonic timestamps within one ring\n";
        ok = false;
        break;
      }
      prev = e.ticks;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string in_path, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--check") {
      check_only = true;
    } else if (a == "-o") {
      if (++i >= argc) return usage();
      out_path = argv[i];
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (in_path.empty()) {
      in_path = a;
    } else {
      return usage();
    }
  }
  if (in_path.empty()) return usage();

  std::ifstream is(in_path);
  if (!is) {
    std::cerr << "trace_dump: cannot open " << in_path << "\n";
    return 1;
  }
  tel::TraceDump dump;
  std::string err;
  if (!tel::read_raw_trace(is, dump, &err)) {
    std::cerr << "trace_dump: " << in_path << ": " << err << "\n";
    return 1;
  }

  if (check_only) {
    if (!check_dump(dump)) return 1;
    std::cerr << "trace_dump: ok: level=" << dump.level << " rings="
              << dump.threads.size() << " events=" << dump.total_events()
              << " dropped=" << dump.total_dropped() << "\n";
    return 0;
  }

  if (out_path.empty()) {
    tel::write_chrome_trace(std::cout, dump);
    std::cout << "\n";
    return 0;
  }
  if (!tel::write_chrome_trace_file(out_path, dump)) {
    std::cerr << "trace_dump: cannot write " << out_path << "\n";
    return 1;
  }
  return 0;
}
